(* Tests for the FCI runtime: deployment, message routing, lifecycle
   triggers, timers, process control (halt/stop/continue), breakpoints and
   the variable read/write extension. *)

open Simkern
open Fail_lang

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

let deploy ?config ?params eng src =
  match Compile.compile_source ?params src with
  | Ok plan -> Fci.Runtime.create eng ?config plan
  | Error msg -> Alcotest.failf "compile failed: %s" msg

(* Fast control plane for unit tests. *)
let fast = { Fci.Runtime.default_config with msg_latency = 0.01 }

let test_deploy_instances () =
  let eng = Engine.create () in
  let rt =
    deploy eng "Daemon D { node 1: } P1 : D on machine 9; G1[3] : D on machines 0 .. 2;"
  in
  ignore (Engine.run eng);
  check_int "4 instances" 4 (List.length (Fci.Runtime.instances rt));
  (match Fci.Runtime.find_instance rt "G1[2]" with
  | Some inst ->
      check_int "machine" 2 (Fci.Runtime.instance_machine inst);
      check_string "node" "1" (Fci.Runtime.instance_node inst)
  | None -> Alcotest.fail "missing G1[2]");
  check_bool "P1 exists" true (Fci.Runtime.find_instance rt "P1" <> None)

let test_deploy_conflict () =
  let eng = Engine.create () in
  try
    ignore (deploy eng "Daemon D { node 1: } P1 : D on machine 0; P2 : D on machine 0;");
    Alcotest.fail "expected conflict"
  with Invalid_argument _ -> ()

let test_timer_and_messages () =
  (* A sends ping to B after 2 s; B replies pong; A counts replies. *)
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      {|
Daemon A {
  int pongs = 0;
  node 1:
    time t = 2;
    timer -> !ping(B1), goto 2;
  node 2:
    ?pong -> pongs = pongs + 1, goto 1;
}
Daemon B {
  node 1:
    ?ping -> !pong(FAIL_SENDER), goto 1;
}
A1 : A on machine 0;
B1 : B on machine 1;
|}
  in
  ignore (Engine.run ~until:7.0 eng);
  (* Cycles at ~2.02s, ~4.04s, ~6.06s. *)
  check_bool "three pongs" true (Fci.Runtime.read_var rt ~instance:"A1" "pongs" = Some 3)

let test_timer_cancelled_on_transition () =
  (* The node-1 timer must not fire after leaving node 1 via a message. *)
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      {|
Daemon A {
  int fired = 0;
  node 1:
    time t = 5;
    timer -> fired = fired + 1, goto 1;
    ?leave -> goto 2;
  node 2:
}
Daemon B {
  node 1:
    time t = 1;
    timer -> !leave(A1), goto 2;
  node 2:
}
A1 : A on machine 0;
B1 : B on machine 1;
|}
  in
  ignore (Engine.run ~until:20.0 eng);
  check_bool "timer did not fire" true (Fci.Runtime.read_var rt ~instance:"A1" "fired" = Some 0)

(* A controllable dummy application process: runs [steps] sleep(1) steps,
   then exits normally. *)
let spawn_app eng ?(steps = 1000) ?(name = "app") ?on_step () =
  Proc.spawn eng ~name (fun () ->
      let continue = ref true in
      let i = ref 0 in
      while !continue && !i < steps do
        Proc.sleep 1.0;
        incr i;
        match on_step with Some f -> f !i | None -> ()
      done)

let fig4_src = "Daemon ADV2 {\n" ^
  "  node 1:\n" ^
  "    onload -> continue, goto 2;\n" ^
  "    ?crash -> !no(P1), goto 1;\n" ^
  "  node 2:\n" ^
  "    onexit -> goto 1;\n" ^
  "    onerror -> goto 1;\n" ^
  "    onload -> continue, goto 2;\n" ^
  "    ?crash -> !ok(P1), halt, goto 1;\n" ^
  "}\n"

let test_onload_transitions () =
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      (fig4_src ^ "Daemon P { node 1: } P1 : P on machine 9; G1[2] : ADV2 on machines 0 .. 1;")
  in
  let app = spawn_app eng () in
  Engine.schedule eng ~delay:1.0 (fun () -> Fci.Runtime.register rt ~machine:0 (Fci.Control.of_proc app))
  |> ignore;
  ignore (Engine.run ~until:5.0 eng);
  match Fci.Runtime.find_instance rt "G1[0]" with
  | Some inst ->
      check_string "moved to node 2" "2" (Fci.Runtime.instance_node inst);
      check_bool "controlled" true (Fci.Runtime.controlled inst <> None)
  | None -> Alcotest.fail "missing instance"

let test_crash_order_kills_and_acks () =
  (* Coordinator kills the registered app via G1[0]; expects ok ack. *)
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      ({|
Daemon COORD {
  int acked = 0;
  node 1:
    time t = 3;
    timer -> !crash(G1[0]), goto 2;
  node 2:
    ?ok -> acked = 1, goto 3;
    ?no -> acked = 2, goto 3;
  node 3:
}
|}
      ^ fig4_src ^ "P1 : COORD on machine 9; G1[2] : ADV2 on machines 0 .. 1;")
  in
  let app = spawn_app eng () in
  let reason = ref None in
  Proc.on_exit app (fun r -> reason := Some r);
  Engine.schedule eng (fun () -> Fci.Runtime.register rt ~machine:0 (Fci.Control.of_proc app))
  |> ignore;
  ignore (Engine.run ~until:10.0 eng);
  check_bool "app killed" true (!reason = Some Proc.Exit_killed);
  check_bool "positive ack" true (Fci.Runtime.read_var rt ~instance:"P1" "acked" = Some 1);
  check_int "one injection" 1 (Fci.Runtime.injected_faults rt)

let test_crash_order_no_app_negative_ack () =
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      ({|
Daemon COORD {
  int acked = 0;
  node 1:
    time t = 1;
    timer -> !crash(G1[0]), goto 2;
  node 2:
    ?ok -> acked = 1, goto 3;
    ?no -> acked = 2, goto 3;
  node 3:
}
|}
      ^ fig4_src ^ "P1 : COORD on machine 9; G1[2] : ADV2 on machines 0 .. 1;")
  in
  ignore (Engine.run ~until:10.0 eng);
  check_bool "negative ack" true (Fci.Runtime.read_var rt ~instance:"P1" "acked" = Some 2);
  check_int "no injection" 0 (Fci.Runtime.injected_faults rt)

let test_onexit_vs_onerror () =
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      {|
Daemon W {
  int exits = 0;
  int errors = 0;
  node 1:
    onload -> goto 2;
  node 2:
    onexit -> exits = exits + 1, goto 1;
    onerror -> errors = errors + 1, goto 1;
}
G1[1] : W on machines 0 .. 0;
|}
  in
  (* First app exits normally, second crashes, third is killed. *)
  let app1 = spawn_app eng ~steps:2 () in
  Engine.schedule eng (fun () -> Fci.Runtime.attach rt ~machine:0 app1) |> ignore;
  let app2 = Proc.spawn eng ~name:"crasher" (fun () -> Proc.sleep 5.0; failwith "boom") in
  Engine.schedule eng ~delay:4.0 (fun () -> Fci.Runtime.attach rt ~machine:0 app2) |> ignore;
  let app3 = spawn_app eng ~name:"victim" () in
  Engine.schedule eng ~delay:7.0 (fun () -> Fci.Runtime.attach rt ~machine:0 app3) |> ignore;
  Engine.schedule eng ~delay:8.0 (fun () -> Proc.kill app3) |> ignore;
  ignore (Engine.run ~until:20.0 eng);
  check_bool "one normal exit" true (Fci.Runtime.read_var rt ~instance:"G1[0]" "exits" = Some 1);
  check_bool "two abnormal" true (Fci.Runtime.read_var rt ~instance:"G1[0]" "errors" = Some 2)

let test_stop_continue () =
  (* Scenario stops the app at load, a timer resumes it 5 s later. *)
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      {|
Daemon S {
  node 1:
    onload -> stop, goto 2;
  node 2:
    time t = 5;
    timer -> continue, goto 3;
  node 3:
}
G1[1] : S on machines 0 .. 0;
|}
  in
  let first_step_at = ref 0.0 in
  let app =
    spawn_app eng ~steps:3
      ~on_step:(fun i -> if i = 1 then first_step_at := Engine.now eng)
      ()
  in
  Engine.schedule eng (fun () -> Fci.Runtime.attach rt ~machine:0 app) |> ignore;
  ignore (Engine.run ~until:30.0 eng);
  (* Without the stop the first step lands at t=1; frozen until ~5. *)
  check_bool "first step delayed past 5s"
    true (!first_step_at >= 5.0 && !first_step_at < 7.0)

let test_breakpoint_halt () =
  (* Fig. 10(b) node 4 pattern: halt just before a named function. *)
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      {|
Daemon B {
  node 1:
    onload -> continue, goto 2;
  node 2:
    before(setCommand) -> halt, goto 3;
  node 3:
}
G1[1] : B on machines 0 .. 0;
|}
  in
  let reached = ref false in
  let rt_ref = rt in
  let app =
    Proc.spawn eng ~name:"app" (fun () ->
        Fci.Runtime.register rt_ref ~machine:0 (Fci.Control.of_proc (Proc.self ()));
        Proc.sleep 1.0;
        Fci.Runtime.breakpoint rt_ref ~machine:0 `Before "setCommand";
        reached := true)
  in
  let reason = ref None in
  Proc.on_exit app (fun r -> reason := Some r);
  ignore (Engine.run ~until:10.0 eng);
  check_bool "killed at breakpoint" true (!reason = Some Proc.Exit_killed);
  check_bool "function body never ran" false !reached

let test_breakpoint_default_continue () =
  (* No matching before() transition: the call is transparent. *)
  let eng = Engine.create () in
  let rt = deploy ~config:fast eng "Daemon B { node 1: onload -> goto 1; } G1[1] : B on machines 0 .. 0;" in
  let reached = ref false in
  ignore
    (Proc.spawn eng ~name:"app" (fun () ->
         Fci.Runtime.register rt ~machine:0 (Fci.Control.of_proc (Proc.self ()));
         Fci.Runtime.breakpoint rt ~machine:0 `Before "anything";
         reached := true));
  ignore (Engine.run ~until:5.0 eng);
  check_bool "continued" true !reached

let test_register_unmonitored_machine () =
  (* Machine without an instance: no fault injection, app unaffected. *)
  let eng = Engine.create () in
  let rt = deploy ~config:fast eng "Daemon B { node 1: } G1[1] : B on machines 0 .. 0;" in
  let done_ = ref false in
  ignore
    (Proc.spawn eng ~name:"app" (fun () ->
         Fci.Runtime.register rt ~machine:5 (Fci.Control.of_proc (Proc.self ()));
         Fci.Runtime.breakpoint rt ~machine:5 `Before "f";
         Proc.sleep 1.0;
         done_ := true));
  ignore (Engine.run ~until:5.0 eng);
  check_bool "ran to completion" true !done_

let test_group_broadcast () =
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      {|
Daemon C {
  node 1:
    time t = 1;
    timer -> !hello(G1), goto 2;
  node 2:
}
Daemon W {
  int got = 0;
  node 1:
    ?hello -> got = 1, goto 1;
}
P1 : C on machine 9;
G1[3] : W on machines 0 .. 2;
|}
  in
  ignore (Engine.run ~until:5.0 eng);
  List.iter
    (fun i ->
      check_bool
        (Printf.sprintf "G1[%d] got broadcast" i)
        true
        (Fci.Runtime.read_var rt ~instance:(Printf.sprintf "G1[%d]" i) "got" = Some 1))
    [ 0; 1; 2 ]

let test_fail_random_bounds () =
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      {|
Daemon R {
  int bad = 0;
  int draws = 0;
  node 1:
    always int ran = FAIL_RANDOM(0, 52);
    time t = 1;
    timer && ran >= 0 && ran <= 52 && draws < 50 -> draws = draws + 1, goto 1;
    timer && draws < 50 -> bad = bad + 1, draws = draws + 1, goto 1;
    timer -> goto 2;
  node 2:
}
G1[1] : R on machines 0 .. 0;
|}
  in
  ignore (Engine.run ~until:100.0 eng);
  check_bool "50 draws" true (Fci.Runtime.read_var rt ~instance:"G1[0]" "draws" = Some 50);
  check_bool "all in bounds" true (Fci.Runtime.read_var rt ~instance:"G1[0]" "bad" = Some 0)

let test_app_var_watch_and_set () =
  (* Planned feature: react to an application variable crossing a
     threshold and write one back. *)
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      {|
Daemon V {
  int seen = 0;
  node 1:
    onload -> goto 2;
  node 2:
    watch(progress) && @progress >= 3 -> seen = @progress, set boost = 7, goto 3;
  node 3:
}
G1[1] : V on machines 0 .. 0;
|}
  in
  let vars = Fci.Control.make_vars () in
  let boost_seen = ref 0 in
  ignore
    (Proc.spawn eng ~name:"app" (fun () ->
         let target =
           Fci.Control.with_vars (Fci.Control.of_proc (Proc.self ())) vars
         in
         Fci.Runtime.register rt ~machine:0 target;
         for i = 1 to 5 do
           Proc.sleep 1.0;
           Fci.Control.set_var vars "progress" i
         done;
         Proc.sleep 1.0;
         boost_seen := Option.value ~default:0 (Fci.Control.get_var vars "boost")));
  ignore (Engine.run ~until:20.0 eng);
  check_bool "threshold captured" true (Fci.Runtime.read_var rt ~instance:"G1[0]" "seen" = Some 3);
  check_int "injector wrote app var" 7 !boost_seen

let test_epsilon_transitions () =
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      {|
Daemon E {
  int x = 0;
  node 1:
    x < 3 -> x = x + 1, goto 1;
    x >= 3 -> goto 2;
  node 2:
}
G1[1] : E on machines 0 .. 0;
|}
  in
  ignore (Engine.run ~until:1.0 eng);
  check_bool "counted to 3" true (Fci.Runtime.read_var rt ~instance:"G1[0]" "x" = Some 3);
  match Fci.Runtime.find_instance rt "G1[0]" with
  | Some inst -> check_string "in node 2" "2" (Fci.Runtime.instance_node inst)
  | None -> Alcotest.fail "missing instance"

let test_epsilon_loop_detected () =
  let eng = Engine.create () in
  try
    ignore (deploy ~config:fast eng "Daemon E { node 1: 1 == 1 -> goto 1; } G1[1] : E on machines 0 .. 0;");
    ignore (Engine.run ~until:1.0 eng);
    Alcotest.fail "expected epsilon-loop error"
  with Invalid_argument msg ->
    check_bool "mentions loop" true
      (try
         ignore (Str.search_forward (Str.regexp_string "epsilon") msg 0);
         true
       with Not_found -> false)

let test_stale_lifecycle_hook_ignored () =
  (* A process from a previous wave exiting after a new registration must
     not clear the new controlled target. *)
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      {|
Daemon W {
  int errors = 0;
  node 1:
    onload -> goto 1;
    onerror -> errors = errors + 1, goto 1;
}
G1[1] : W on machines 0 .. 0;
|}
  in
  let old_app = spawn_app eng ~name:"old" () in
  Engine.schedule eng (fun () -> Fci.Runtime.attach rt ~machine:0 old_app) |> ignore;
  let new_app = spawn_app eng ~name:"new" () in
  Engine.schedule eng ~delay:2.0 (fun () -> Fci.Runtime.attach rt ~machine:0 new_app) |> ignore;
  Engine.schedule eng ~delay:3.0 (fun () -> Proc.kill old_app) |> ignore;
  ignore (Engine.run ~until:10.0 eng);
  (match Fci.Runtime.find_instance rt "G1[0]" with
  | Some inst -> (
      match Fci.Runtime.controlled inst with
      | Some ctl -> check_string "still controls new" "new" ctl.Fci.Control.target_name
      | None -> Alcotest.fail "controlled target lost")
  | None -> Alcotest.fail "missing instance");
  check_bool "stale onerror ignored" true
    (Fci.Runtime.read_var rt ~instance:"G1[0]" "errors" = Some 0)

let test_out_of_range_send_dropped () =
  (* G1[9] does not exist: the send is traced and dropped, the run
     continues. *)
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      {|
Daemon C {
  int after_ok = 0;
  node 1:
    time t = 1;
    timer -> !hello(G1[9]), goto 2;
  node 2:
    time t = 1;
    timer -> after_ok = 1, goto 3;
  node 3:
}
P1 : C on machine 5;
G1[2] : C on machines 0 .. 1;
|}
  in
  ignore (Engine.run ~until:10.0 eng);
  check_bool "continued past bad send" true (Fci.Runtime.read_var rt ~instance:"P1" "after_ok" = Some 1);
  check_bool "send-error traced" true
    (Simkern.Trace.count (Engine.trace eng) ~event:"send-error" >= 1)

let test_halt_without_target_is_noop () =
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      "Daemon H { int done_ = 0; node 1: time t = 1; timer -> halt, done_ = 1, goto 2; node 2: }        G1[1] : H on machines 0 .. 0;"
  in
  ignore (Engine.run ~until:5.0 eng);
  check_bool "actions after halt still ran" true
    (Fci.Runtime.read_var rt ~instance:"G1[0]" "done_" = Some 1);
  check_int "nothing injected" 0 (Fci.Runtime.injected_faults rt);
  check_bool "halt-no-target traced" true
    (Simkern.Trace.count (Engine.trace eng) ~event:"halt-no-target" = 1)

let test_register_overwrite () =
  (* A second registration replaces the controlled target (with a trace
     note); crash orders then hit the newest process. *)
  let eng = Engine.create () in
  let rt =
    deploy ~config:fast eng
      {|
Daemon W {
  node 1:
    onload -> goto 1;
    ?crash -> halt, goto 2;
  node 2:
}
Daemon C {
  node 1:
    time t = 5;
    timer -> !crash(G1[0]), goto 2;
  node 2:
}
P1 : C on machine 5;
G1[1] : W on machines 0 .. 0;
|}
  in
  let first = spawn_app eng ~name:"first" () in
  let second = spawn_app eng ~name:"second" () in
  Engine.schedule eng (fun () -> Fci.Runtime.attach rt ~machine:0 first) |> ignore;
  Engine.schedule eng ~delay:1.0 (fun () -> Fci.Runtime.attach rt ~machine:0 second) |> ignore;
  let first_dead = ref false and second_dead = ref false in
  Proc.on_exit first (fun r -> if r = Proc.Exit_killed then first_dead := true);
  Proc.on_exit second (fun r -> if r = Proc.Exit_killed then second_dead := true);
  ignore (Engine.run ~until:10.0 eng);
  check_bool "overwrite traced" true
    (Simkern.Trace.count (Engine.trace eng) ~event:"register-overwrite" = 1);
  check_bool "newest killed" true !second_dead;
  check_bool "oldest untouched" false !first_dead

let () =
  Alcotest.run "fci"
    [
      ( "deployment",
        [
          Alcotest.test_case "instances" `Quick test_deploy_instances;
          Alcotest.test_case "conflict" `Quick test_deploy_conflict;
        ] );
      ( "automaton",
        [
          Alcotest.test_case "timer and messages" `Quick test_timer_and_messages;
          Alcotest.test_case "timer cancelled" `Quick test_timer_cancelled_on_transition;
          Alcotest.test_case "FAIL_RANDOM bounds" `Quick test_fail_random_bounds;
          Alcotest.test_case "epsilon transitions" `Quick test_epsilon_transitions;
          Alcotest.test_case "epsilon loop detected" `Quick test_epsilon_loop_detected;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "onload" `Quick test_onload_transitions;
          Alcotest.test_case "crash order ok" `Quick test_crash_order_kills_and_acks;
          Alcotest.test_case "crash order no" `Quick test_crash_order_no_app_negative_ack;
          Alcotest.test_case "onexit vs onerror" `Quick test_onexit_vs_onerror;
          Alcotest.test_case "stale hook ignored" `Quick test_stale_lifecycle_hook_ignored;
          Alcotest.test_case "unmonitored machine" `Quick test_register_unmonitored_machine;
        ] );
      ( "control",
        [
          Alcotest.test_case "stop/continue" `Quick test_stop_continue;
          Alcotest.test_case "breakpoint halt" `Quick test_breakpoint_halt;
          Alcotest.test_case "breakpoint default continue" `Quick test_breakpoint_default_continue;
        ] );
      ( "messaging",
        [ Alcotest.test_case "group broadcast" `Quick test_group_broadcast ] );
      ( "extension",
        [ Alcotest.test_case "watch and set app vars" `Quick test_app_var_watch_and_set ] );
      ( "robustness",
        [
          Alcotest.test_case "out-of-range send dropped" `Quick test_out_of_range_send_dropped;
          Alcotest.test_case "halt without target" `Quick test_halt_without_target_is_noop;
          Alcotest.test_case "register overwrite" `Quick test_register_overwrite;
        ] );
    ]
