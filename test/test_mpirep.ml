(* Integration tests for the replication backend (mpirep): failure-free
   checksum parity with MPICH-Vcl, zero-rollback failover of a single
   replica, duplicate suppression under multicast redundancy and
   log-flush re-sends, replication exhaustion (both direct kills and the
   [replica_split] FAIL scenario), and determinism by seed. *)

open Simkern
open Simos

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let test_params =
  { Workload.Stencil.iterations = 30; compute_time = 0.5; msg_bytes = 10_000; jitter = 0.0 }

let test_cfg ?(degree = 2) ~n_ranks () =
  {
    (Mpivcl.Config.default ~n_ranks) with
    Mpivcl.Config.protocol = Mpivcl.Config.Replication { degree };
    init_delay_min = 0.1;
    init_delay_max = 0.1;
    ssh_delay = 0.3;
    relaunch_delay = 0.0;
    term_straggler_prob = 0.0;
    store_jitter = 0.0;
  }

let instrument_app app results =
  {
    app with
    Mpivcl.App.main =
      (fun ctx ->
        app.Mpivcl.App.main ctx;
        Hashtbl.replace results ctx.Mpivcl.App.rank ctx.Mpivcl.App.state.(2));
  }

type run = {
  eng : Engine.t;
  handle : Mpirep.Deploy.handle;
  results : (int, int) Hashtbl.t;
  reference : int;
  n_ranks : int;
}

let setup ?(seed = 7L) ?(n_ranks = 4) ?(degree = 2) ?(n_compute = 10) ?params () =
  let params = Option.value ~default:test_params params in
  let cfg = test_cfg ~degree ~n_ranks () in
  let eng = Engine.create ~seed () in
  let results = Hashtbl.create 16 in
  let app = instrument_app (Workload.Stencil.app params ~n_ranks) results in
  let handle = Mpirep.Deploy.launch eng ~cfg ~app ~state_bytes:1_000_000 ~n_compute () in
  let reference = Workload.Stencil.reference_checksum params ~n_ranks in
  { eng; handle; results; reference; n_ranks }

let run_until run t = ignore (Engine.run ~until:t run.eng)
let dispatcher run = run.handle.Mpirep.Deploy.rdispatcher
let trace run = Engine.trace run.eng

let assert_completed ?(msg = "completed") run =
  match Mpirep.Rdispatcher.peek_outcome (dispatcher run) with
  | Some (Mpirep.Rdispatcher.Completed _) -> ()
  | Some (Mpirep.Rdispatcher.Aborted reason) -> Alcotest.failf "%s: aborted: %s" msg reason
  | None -> Alcotest.failf "%s: still running" msg

let assert_checksums run =
  check_int "all ranks reported" run.n_ranks (Hashtbl.length run.results);
  Hashtbl.iter
    (fun rank checksum ->
      check_int (Printf.sprintf "rank %d checksum" rank) run.reference checksum)
    run.results

(* Kill one replica (communication daemon + computation process) of a
   logical rank, as a FAIL-MPI halt on its host does. *)
let kill_replica run rank slot =
  let cluster = Mpirep.Deploy.cluster run.handle in
  let killed = ref 0 in
  List.iter
    (fun (h : Cluster.host) ->
      List.iter
        (fun p ->
          let name = Proc.name p in
          if
            String.equal name (Printf.sprintf "rdaemon-%d.%d" rank slot)
            || String.equal name (Printf.sprintf "rmpi-%d.%d" rank slot)
          then begin
            Proc.kill p;
            incr killed
          end)
        (Cluster.tasks cluster ~host:h.Cluster.host_id))
    (Cluster.hosts cluster);
  !killed

let at run t f = Engine.schedule run.eng ~delay:t f |> ignore

(* ------------------------------------------------------------------ *)

let test_failure_free_parity_with_vcl () =
  (* Replication must produce the exact checksums the Vcl backend
     produces fault-free (both equal the sequential reference). *)
  let rep = setup () in
  run_until rep 100.0;
  assert_completed rep;
  assert_checksums rep;
  let eng = Engine.create ~seed:11L () in
  let vcl_results = Hashtbl.create 16 in
  let app =
    instrument_app (Workload.Stencil.app test_params ~n_ranks:4) vcl_results
  in
  let cfg =
    { (test_cfg ~n_ranks:4 ()) with Mpivcl.Config.protocol = Mpivcl.Config.Non_blocking }
  in
  let vcl = Mpivcl.Deploy.launch eng ~cfg ~app ~state_bytes:1_000_000 ~n_compute:6 () in
  ignore (Engine.run ~until:100.0 eng);
  (match Mpivcl.Dispatcher.peek_outcome vcl.Mpivcl.Deploy.dispatcher with
  | Some (Mpivcl.Dispatcher.Completed _) -> ()
  | _ -> Alcotest.fail "vcl baseline did not complete");
  Hashtbl.iter
    (fun rank checksum ->
      check_int
        (Printf.sprintf "rank %d parity" rank)
        (Hashtbl.find vcl_results rank)
        checksum)
    rep.results

let test_failure_free_no_failovers () =
  let run = setup ~seed:3L () in
  run_until run 100.0;
  assert_completed run;
  check_int "no failovers" 0 (Mpirep.Rdispatcher.failovers (dispatcher run));
  check_int "no respawns" 0 (Mpirep.Rdispatcher.respawns (dispatcher run));
  check_bool "not exhausted" false (Mpirep.Rdispatcher.exhausted (dispatcher run))

let test_single_failover_no_rollback () =
  (* Kill one replica mid-run: the survivor carries the rank, the run
     completes with correct checksums and ZERO recovery waves — the
     replication family's defining contrast with rollback recovery. *)
  let run = setup ~seed:5L () in
  at run 8.0 (fun () -> check_int "killed one replica" 2 (kill_replica run 2 0));
  run_until run 200.0;
  assert_completed run;
  assert_checksums run;
  check_bool "failover observed" true (Mpirep.Rdispatcher.failovers (dispatcher run) >= 1);
  check_bool "respawned" true (Mpirep.Rdispatcher.respawns (dispatcher run) >= 1);
  let t = trace run in
  check_bool "failover traced" true (Trace.count t ~event:"replica-failover" >= 1);
  check_bool "respawn traced" true (Trace.count t ~event:"replica-respawn" >= 1);
  check_int "no recovery waves" 0 (Trace.count t ~event:"recovery-start");
  check_int "no rollbacks" 0 (Trace.count t ~event:"recovery-complete")

let test_duplicate_suppression () =
  (* Sibling replicas multicast the same (src, tag) payloads, and the
     log flush after a respawn re-sends logged entries: receivers must
     drop every duplicate and still converge to the right checksums. *)
  let run = setup ~seed:5L () in
  at run 8.0 (fun () -> ignore (kill_replica run 2 0));
  run_until run 200.0;
  assert_completed run;
  assert_checksums run;
  check_bool "duplicates dropped" true
    (Trace.count (trace run) ~event:"duplicate-dropped" >= 1)

let test_exhaustion_direct () =
  (* Kill both replicas of rank 1 faster than the respawn latency
     (daemon re-registers ~0.4 s after death under the test config):
     the rank is uncovered, the failover window cannot be saved, and
     the dispatcher declares replication exhausted. *)
  let run = setup ~seed:9L () in
  at run 8.0 (fun () -> ignore (kill_replica run 1 0));
  at run 8.2 (fun () -> ignore (kill_replica run 1 1));
  run_until run 200.0;
  (match Mpirep.Rdispatcher.peek_outcome (dispatcher run) with
  | Some (Mpirep.Rdispatcher.Aborted _) -> ()
  | Some (Mpirep.Rdispatcher.Completed _) -> Alcotest.fail "run should not complete"
  | None -> Alcotest.fail "dispatcher should have aborted");
  check_bool "exhausted" true (Mpirep.Rdispatcher.exhausted (dispatcher run));
  check_bool "exhaustion traced" true
    (Trace.count (trace run) ~event:"replication-exhausted" >= 1)

let test_replica_split_scenario_is_buggy () =
  (* End-to-end through the FAIL pipeline: the replica-split scenario
     (gap 0) kills both replicas of one rank inside the failover window
     — classified Buggy, like the paper's frozen runs. *)
  let n_ranks = 4 in
  let scenario =
    Fail_lang.Paper_scenarios.replica_split ~n_machines:10 ~n_ranks ~rank:2 ~start:8
      ~gap:0
  in
  let app = Workload.Stencil.app test_params ~n_ranks in
  let spec =
    {
      (Failmpi.Run.default_spec ~app ~cfg:(test_cfg ~n_ranks ()) ~n_compute:10
         ~state_bytes:1_000_000)
      with
      Failmpi.Run.scenario = Some scenario;
      timeout = 200.0;
    }
  in
  let r = Failmpi.Run.execute spec in
  check_bool "buggy" true (r.Failmpi.Run.outcome = Failmpi.Run.Buggy);
  check_int "two faults" 2 r.Failmpi.Run.injected_faults;
  check_bool "exhaustion traced" true
    (Trace.count r.Failmpi.Run.trace ~event:"replication-exhausted" >= 1)

let test_replica_split_staggered_completes () =
  (* Same scenario with a gap beyond the respawn latency (~0.4 s under
     the test config): both kills are absorbed as independent failovers
     and the run completes. *)
  let n_ranks = 4 in
  let scenario =
    Fail_lang.Paper_scenarios.replica_split ~n_machines:10 ~n_ranks ~rank:2 ~start:8
      ~gap:4
  in
  let app = Workload.Stencil.app test_params ~n_ranks in
  let expected = Workload.Stencil.reference_checksum test_params ~n_ranks in
  let spec =
    {
      (Failmpi.Run.default_spec ~app ~cfg:(test_cfg ~n_ranks ()) ~n_compute:10
         ~state_bytes:1_000_000)
      with
      Failmpi.Run.scenario = Some scenario;
      timeout = 300.0;
    }
  in
  let r = Failmpi.Run.execute ~expected_checksum:expected spec in
  check_bool "completed" true
    (match r.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false);
  check_bool "checksums ok" true (r.Failmpi.Run.checksum_ok = Some true);
  check_bool "two failovers" true ((Failmpi.Run.failovers r) >= 2);
  check_int "no recovery waves" 0 (Failmpi.Run.recoveries r)

let test_determinism_same_seed_same_trace () =
  let go () =
    let run = setup ~seed:21L () in
    at run 8.0 (fun () -> ignore (kill_replica run 2 0));
    run_until run 200.0;
    assert_completed run;
    Trace.length (trace run)
  in
  check_int "same seed, same trace length" (go ()) (go ())

let test_degree_must_fit () =
  Alcotest.check_raises "degree * ranks must fit"
    (Invalid_argument
       "Mpirep.Deploy.launch: 12 replicas (degree 3 x 4 ranks) need more than 10 \
        compute hosts")
    (fun () -> ignore (setup ~degree:3 ()))

let () =
  Alcotest.run "mpirep"
    [
      ( "replication",
        [
          Alcotest.test_case "failure-free parity with vcl" `Quick
            test_failure_free_parity_with_vcl;
          Alcotest.test_case "failure-free no failovers" `Quick
            test_failure_free_no_failovers;
          Alcotest.test_case "single failover, no rollback" `Quick
            test_single_failover_no_rollback;
          Alcotest.test_case "duplicate suppression" `Quick test_duplicate_suppression;
          Alcotest.test_case "exhaustion on double kill" `Quick test_exhaustion_direct;
          Alcotest.test_case "replica-split scenario is buggy" `Quick
            test_replica_split_scenario_is_buggy;
          Alcotest.test_case "staggered split completes" `Quick
            test_replica_split_staggered_completes;
          Alcotest.test_case "determinism by seed" `Quick
            test_determinism_same_seed_same_trace;
          Alcotest.test_case "degree must fit cluster" `Quick test_degree_must_fit;
        ] );
    ]
