(* Tests for the FAIL language: lexer, parser, pretty-printer round-trip,
   semantic analysis, compiler and the paper's scenario listings. *)

open Fail_lang

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

let tokens_of src = List.map (fun t -> t.Token.tok) (Lexer.tokenize src)

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_symbols () =
  check_bool "arrow and friends" true
    (tokens_of "-> != <> <= >= && .. = =="
    = Token.[ ARROW; NEQ; NEQ; LE; GE; AND; DOTDOT; ASSIGN; EQEQ; EOF ])

let test_lexer_keywords () =
  check_bool "keywords" true
    (tokens_of "Daemon daemon node onload onexit onerror before after goto halt stop continue"
    = Token.
        [
          KW_daemon;
          KW_daemon;
          KW_node;
          KW_onload;
          KW_onexit;
          KW_onerror;
          KW_before;
          KW_after;
          KW_goto;
          KW_halt;
          KW_stop;
          KW_continue;
          EOF;
        ])

let test_lexer_idents_ints () =
  check_bool "mix" true
    (tokens_of "G1[ran] 42 nb_crash"
    = Token.[ IDENT "G1"; LBRACKET; IDENT "ran"; RBRACKET; INT 42; IDENT "nb_crash"; EOF ])

let test_lexer_comments () =
  check_bool "comments skipped" true
    (tokens_of "1 // line comment\n /* block \n comment */ 2" = Token.[ INT 1; INT 2; EOF ])

let test_lexer_locations () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
      check_int "a line" 1 a.Token.loc.Loc.line;
      check_int "a col" 1 a.Token.loc.Loc.col;
      check_int "b line" 2 b.Token.loc.Loc.line;
      check_int "b col" 3 b.Token.loc.Loc.col
  | _ -> Alcotest.fail "unexpected token count"

let test_lexer_illegal () =
  (try
     ignore (Lexer.tokenize "a $ b");
     Alcotest.fail "expected error"
   with Loc.Error (_, msg) -> check_bool "mentions char" true (String.length msg > 0));
  try
    ignore (Lexer.tokenize "/* unterminated");
    Alcotest.fail "expected error"
  with Loc.Error (_, msg) ->
    check_bool "unterminated" true
      (String.length msg >= 12 && String.sub msg 0 12 = "unterminated")

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse_one_daemon src =
  let p = Parser.parse src in
  match p.Ast.daemons with [ d ] -> d | _ -> Alcotest.fail "expected one daemon"

let test_parse_minimal () =
  let d = parse_one_daemon "Daemon D { node 1: }" in
  check_string "name" "D" d.Ast.d_name;
  check_int "nodes" 1 (List.length d.Ast.d_nodes)

let test_parse_expr_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  check_bool "mul binds tighter" true
    (Ast.equal_expr e (Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3))));
  let e = Parser.parse_expr "(1 + 2) * 3" in
  check_bool "parens" true
    (Ast.equal_expr e (Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, Ast.Int 1, Ast.Int 2), Ast.Int 3)))

let test_parse_expr_assoc () =
  let e = Parser.parse_expr "10 - 3 - 2" in
  check_bool "left assoc" true
    (Ast.equal_expr e (Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, Ast.Int 10, Ast.Int 3), Ast.Int 2)))

let test_parse_transition () =
  let d =
    parse_one_daemon
      "Daemon D { node 1: ?ok && nb > 1 -> !crash(G1[ran]), nb = nb - 1, goto 2; node 2: }"
  in
  let n = List.hd d.Ast.d_nodes in
  match n.Ast.n_transitions with
  | [ t ] ->
      check_bool "trigger" true (t.Ast.guard.trigger = Some (Ast.T_recv "ok"));
      check_int "conds" 1 (List.length t.Ast.guard.conds);
      check_int "actions" 3 (List.length t.Ast.actions)
  | _ -> Alcotest.fail "expected one transition"

let test_parse_timer_always () =
  let d =
    parse_one_daemon
      "Daemon D { node 1: always int ran = FAIL_RANDOM(0, 52); time g_timer = 50; timer -> \
       goto 1; }"
  in
  let n = List.hd d.Ast.d_nodes in
  check_int "always" 1 (List.length n.Ast.n_always);
  check_bool "timer" true (n.Ast.n_timer <> None)

let test_parse_two_timers_rejected () =
  match Parser.parse_result "Daemon D { node 1: time a = 1; time b = 2; }" with
  | Error msg -> check_bool "mentions timer" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected error"

let test_parse_two_triggers_rejected () =
  match Parser.parse_result "Daemon D { node 1: onload && onexit -> goto 1; }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_parse_deployment () =
  let p = Parser.parse "Daemon D { node 1: } P1 : D on machine 53; G1[53] : D on machines 0 .. 52;" in
  check_int "two deployments" 2 (List.length p.Ast.deployments);
  match p.Ast.deployments with
  | [ Ast.Dep_singleton s; Ast.Dep_group g ] ->
      check_string "inst" "P1" s.inst;
      check_int "machine" 53 s.machine;
      check_int "count" 53 g.count;
      check_int "lo" 0 g.mach_lo;
      check_int "hi" 52 g.mach_hi
  | _ -> Alcotest.fail "unexpected deployment shapes"

let test_parse_sender_dest () =
  let d = parse_one_daemon "Daemon D { node 1: ?waveok -> !crash(FAIL_SENDER), goto 1; }" in
  let n = List.hd d.Ast.d_nodes in
  match (List.hd n.Ast.n_transitions).Ast.actions with
  | [ Ast.A_send ("crash", Ast.D_sender); Ast.A_goto "1" ] -> ()
  | _ -> Alcotest.fail "expected sender destination"

let test_parse_before () =
  let d = parse_one_daemon "Daemon D { node 4: before(localMPI_setCommand) -> halt, goto 5; node 5: }" in
  let n = List.hd d.Ast.d_nodes in
  check_bool "before trigger" true
    ((List.hd n.Ast.n_transitions).Ast.guard.trigger
    = Some (Ast.T_before "localMPI_setCommand"))

let test_parse_set_and_watch () =
  let d =
    parse_one_daemon
      "Daemon D { node 1: watch(progress) && @progress > 10 -> set speed = 2, goto 1; }"
  in
  let n = List.hd d.Ast.d_nodes in
  let t = List.hd n.Ast.n_transitions in
  check_bool "watch trigger" true (t.Ast.guard.trigger = Some (Ast.T_watch "progress"));
  match t.Ast.actions with
  | [ Ast.A_set_app ("speed", Ast.Int 2); Ast.A_goto "1" ] -> ()
  | _ -> Alcotest.fail "expected set action"

let test_parse_net_actions () =
  let p =
    Parser.parse
      "Daemon D { node 1: timer -> partition G1[2], goto 2; time t = 5;\n\
      \ node 2: timer -> degrade G1[3] loss = 100 latency = 2, goto 3; time t = 1;\n\
      \ node 3: timer -> partition G1[0] G1[1], heal; time t = 1; }"
  in
  let d = List.hd p.Ast.daemons in
  let actions n = (List.hd (List.nth d.Ast.d_nodes n).Ast.n_transitions).Ast.actions in
  (match actions 0 with
  | [ Ast.A_partition (Ast.D_indexed ("G1", Ast.Int 2), None); Ast.A_goto "2" ] -> ()
  | _ -> Alcotest.fail "expected one-sided partition");
  (match actions 1 with
  | [ Ast.A_degrade d; Ast.A_goto "3" ] ->
      check_bool "loss" true (d.Ast.deg_loss = Some (Ast.Int 100));
      check_bool "latency" true (d.Ast.deg_latency = Some (Ast.Int 2));
      check_bool "jitter" true (d.Ast.deg_jitter = None)
  | _ -> Alcotest.fail "expected degrade");
  match actions 2 with
  | [ Ast.A_partition (_, Some (Ast.D_indexed ("G1", Ast.Int 1))); Ast.A_heal ] -> ()
  | _ -> Alcotest.fail "expected two-sided partition then heal"

let test_parse_topo_dests () =
  let p =
    Parser.parse
      "Daemon D { node 1: timer -> partition switch agg[N + 1], goto 2; time t = 5;\n\
      \ node 2: timer -> partition pod 1, goto 3; time t = 1;\n\
      \ node 3: timer -> degrade rack (R - 1) loss = 100, heal; time t = 1; }"
  in
  let d = List.hd p.Ast.daemons in
  let actions n = (List.hd (List.nth d.Ast.d_nodes n).Ast.n_transitions).Ast.actions in
  (match actions 0 with
  | [
   Ast.A_partition
     (Ast.D_topo (Ast.Sel_switch (Ast.Tier_agg, Ast.Binop (Ast.Add, Ast.Var "N", Ast.Int 1))), None);
   Ast.A_goto "2";
  ] ->
      ()
  | _ -> Alcotest.fail "expected switch partition with expression index");
  (match actions 1 with
  | [ Ast.A_partition (Ast.D_topo (Ast.Sel_pod (Ast.Int 1)), None); Ast.A_goto "3" ] -> ()
  | _ -> Alcotest.fail "expected pod partition");
  match actions 2 with
  | [ Ast.A_degrade dg; Ast.A_heal ] -> (
      match dg.Ast.deg_target with
      | Ast.D_topo (Ast.Sel_rack (Ast.Binop (Ast.Sub, Ast.Var "R", Ast.Int 1))) ->
          check_bool "loss" true (dg.Ast.deg_loss = Some (Ast.Int 100))
      | _ -> Alcotest.fail "expected rack degrade target")
  | _ -> Alcotest.fail "expected rack degrade then heal"

let test_parse_service_actions () =
  let p =
    Parser.parse
      "Daemon D { node 1: timer -> halt service ckpt[N + 1], goto 2; time t = 5;\n\
      \ node 2: timer -> stop service sched, goto 3; time t = 1;\n\
      \ node 3: timer -> continue service disp, halt; time t = 1; }"
  in
  let d = List.hd p.Ast.daemons in
  let actions n = (List.hd (List.nth d.Ast.d_nodes n).Ast.n_transitions).Ast.actions in
  (match actions 0 with
  | [
   Ast.A_halt (Some (Ast.Svc_ckpt (Ast.Binop (Ast.Add, Ast.Var "N", Ast.Int 1)))); Ast.A_goto "2";
  ] ->
      ()
  | _ -> Alcotest.fail "expected ckpt halt with expression index");
  (match actions 1 with
  | [ Ast.A_stop (Some Ast.Svc_sched); Ast.A_goto "3" ] -> ()
  | _ -> Alcotest.fail "expected scheduler stop");
  (* a bare [halt] (the controller's own exit) must stay selector-free *)
  match actions 2 with
  | [ Ast.A_continue (Some Ast.Svc_disp); Ast.A_halt None ] -> ()
  | _ -> Alcotest.fail "expected dispatcher continue then bare halt"

let test_parse_degrade_bad_field () =
  match
    Parser.parse_result "Daemon D { node 1: timer -> degrade G1[0] speed = 2; time t = 1; }"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-field error"

let test_parse_error_location () =
  match Parser.parse_result "Daemon D {\n node 1:\n onload -> ;\n}" with
  | Error msg -> check_bool "line 3 reported" true (String.length msg > 0 && String.sub msg 0 6 = "line 3")
  | Ok _ -> Alcotest.fail "expected error"

(* ------------------------------------------------------------------ *)
(* Pretty-printer round-trip *)

let roundtrip src =
  let p = Parser.parse src in
  let printed = Pp.program_to_string p in
  let p' =
    try Parser.parse printed
    with Loc.Error (loc, msg) ->
      Alcotest.failf "re-parse failed: %s\n--- printed ---\n%s" (Loc.error_to_string loc msg)
        printed
  in
  check_bool "round-trip equal" true (Ast.equal_program p p')

let test_roundtrip_paper_scenarios () =
  List.iter (fun (_, src) -> roundtrip src) Paper_scenarios.all

let test_roundtrip_edge_cases () =
  roundtrip "Daemon D { int x = 0 - 5; node 1: x < 3 * (x + 2) -> x = x % 2, goto 1; }";
  roundtrip "Daemon D { node a: ?m -> !m(P), stop, continue, halt; node b: } P : D on machine 0;"

(* Every net-action shape the printer can emit survives print -> parse:
   one- and two-sided partition, heal, and degrade with every subset of
   the three dimension fields. *)
let test_roundtrip_net_actions () =
  roundtrip "Daemon D { node 1: timer -> partition G1[2], goto 1; time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> partition G1[0] G1[1], goto 1; time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> partition FAIL_SENDER, heal; ?cut -> heal, goto 1; }";
  roundtrip "Daemon D { node 1: timer -> degrade G1[2] loss = 100, goto 1; time t = 5; }";
  roundtrip
    "Daemon D { node 1: timer -> degrade G1[2] loss = N * 10 latency = 2 jitter = 1, goto 1; \
     time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> degrade P latency = 7; time t = 5; } P : D on machine 0;"

(* Infrastructure service selectors on halt/stop/continue: the ckpt
   index sits inside brackets so any expression prints bare; the bare
   forms (controller self-halt etc.) must stay selector-free. *)
let test_roundtrip_service_actions () =
  roundtrip "Daemon D { node 1: timer -> halt service ckpt[0], goto 1; time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> halt service ckpt[N + 1], goto 1; time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> stop service ckpt[2], goto 1; time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> continue service ckpt[I], goto 1; time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> halt service sched, goto 1; time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> stop service disp, halt; time t = 5; }";
  roundtrip "Daemon D { node 1: ?kill -> halt, goto 1; }"

(* Topology group destinations: the switch index sits inside brackets so
   any expression prints bare, while pod/rack indices parse as a single
   factor — compound ones must come back parenthesized. *)
let test_roundtrip_topo_dests () =
  roundtrip "Daemon D { node 1: timer -> partition switch edge[2], goto 1; time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> partition switch agg[N + 1], goto 1; time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> partition switch core[N * 2 - 1], heal; time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> partition pod 1, goto 1; time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> partition pod (N + 1), goto 1; time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> partition rack N, goto 1; time t = 5; }";
  roundtrip
    "Daemon D { node 1: timer -> degrade rack (R - 1) loss = 100 latency = 2, goto 1; \
     time t = 5; }";
  roundtrip "Daemon D { node 1: timer -> degrade pod 0 loss = 300, goto 1; time t = 5; }";
  (* the pretty-printer must parenthesize a compound pod index it is
     handed even when the parser could never have produced it bare *)
  let printed =
    Format.asprintf "%a"
      (fun ppf () ->
        Pp.pp_action ppf
          (Ast.A_partition
             (Ast.D_topo (Ast.Sel_pod (Ast.Binop (Ast.Add, Ast.Var "N", Ast.Int 1))), None)))
      ()
  in
  check_string "compound pod index parenthesized" "partition pod (N + 1)" printed

(* Codegen.Scenario: [injections_of_program] is the inverse of [source]
   for every fault kind, including the network ones. *)
let test_scenario_injection_roundtrip () =
  let open Codegen.Scenario in
  let plans =
    [
      [ { machine = 2; anchor = After 20; kind = Partition } ];
      [
        { machine = 1; anchor = After 10; kind = Degrade { loss = 50; latency = 3 } };
        { machine = 1; anchor = After 15; kind = Kill };
        { machine = 0; anchor = After 8; kind = Heal };
      ];
      [
        { machine = 0; anchor = After 20; kind = Switch_kill { tier = Ast.Tier_edge } };
        { machine = 3; anchor = After 5; kind = Switch_kill { tier = Ast.Tier_agg } };
        { machine = 1; anchor = After 5; kind = Switch_kill { tier = Ast.Tier_core } };
        { machine = 2; anchor = After 10; kind = Pod_degrade { loss = 300; latency = 5 } };
        { machine = 0; anchor = After 15; kind = Heal };
      ];
      [
        { machine = 3; anchor = After 25; kind = Kill };
        { machine = 4; anchor = On_reload { nth = 10; delay = 1 }; kind = Freeze { thaw = 30 } };
        { machine = 3; anchor = After 2; kind = Partition };
        { machine = 0; anchor = After 12; kind = Heal };
      ];
      (* service faults: machine mirrors the ckpt replica index *)
      [
        { machine = 0; anchor = After 32; kind = Service_kill { service = S_ckpt 0 } };
        { machine = 2; anchor = After 1; kind = Service_freeze { service = S_ckpt 2; thaw = 20 } };
        { machine = 0; anchor = After 5; kind = Service_kill { service = S_sched } };
        { machine = 0; anchor = After 3; kind = Service_freeze { service = S_disp; thaw = 10 } };
        { machine = 1; anchor = After 6; kind = Kill };
      ];
    ]
  in
  List.iter
    (fun injections ->
      let src = source ~n_machines:13 injections in
      let p = Parser.parse src in
      match injections_of_program p with
      | Ok (n_machines, got) ->
          check_bool "machine count survives round-trip" true (n_machines = 13);
          check_bool "injections survive round-trip" true (got = injections)
      | Error e -> Alcotest.failf "injections_of_program failed: %s\n%s" e src)
    plans

(* Every scenario file we ship must survive parse -> print -> parse.
   (Round-tripping is parameter-independent: [Pp] prints the AST before
   [Sema] substitutes anything.) *)
let test_roundtrip_scenario_files () =
  let dir = "../scenarios" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fail")
    |> List.sort String.compare
  in
  check_bool "scenario files present" true (List.length files >= 8);
  List.iter
    (fun file ->
      let path = Filename.concat dir file in
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      try roundtrip src
      with exn -> Alcotest.failf "%s: %s" file (Printexc.to_string exn))
    files

(* Random expression generator for print/parse round-trip. *)
let gen_expr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof [ map (fun i -> Ast.Int i) (int_bound 1000); return (Ast.Var "x") ]
          else
            frequency
              [
                (1, map (fun i -> Ast.Int i) (int_bound 1000));
                (1, return (Ast.Var "x"));
                ( 3,
                  map3
                    (fun op a b -> Ast.Binop (op, a, b))
                    (oneofl Ast.[ Add; Sub; Mul; Div; Mod ])
                    (self (n / 2)) (self (n / 2)) );
                ( 1,
                  map2 (fun a b -> Ast.Random (a, b)) (self (n / 2)) (self (n / 2)) );
              ])
        (min n 8))

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expression print/parse round-trip" ~count:500
    (QCheck.make ~print:(fun e -> Format.asprintf "%a" Pp.pp_expr e) gen_expr)
    (fun e ->
      let printed = Format.asprintf "%a" Pp.pp_expr e in
      Ast.equal_expr e (Parser.parse_expr printed))

(* Random well-formed program generator: validity by construction, so the
   whole pipeline (print -> parse -> sema -> compile) must succeed and the
   re-parsed program must equal the original. *)
let gen_program =
  let open QCheck.Gen in
  let ident pool = map (List.nth pool) (int_bound (List.length pool - 1)) in
  let var_pool = [ "x"; "y"; "count" ] in
  let msg_pool = [ "crash"; "ok"; "no"; "ping" ] in
  let fn_pool = [ "setCommand"; "send_all" ] in
  let gen_expr vars =
    fix
      (fun self n ->
        if n = 0 || vars = [] then
          if vars = [] then map (fun i -> Ast.Int i) (int_bound 100)
          else
            oneof [ map (fun i -> Ast.Int i) (int_bound 100); map (fun v -> Ast.Var v) (ident vars) ]
        else
          frequency
            [
              (2, map (fun i -> Ast.Int i) (int_bound 100));
              (2, map (fun v -> Ast.Var v) (ident vars));
              ( 1,
                map3
                  (fun op a b -> Ast.Binop (op, a, b))
                  (oneofl Ast.[ Add; Sub; Mul ])
                  (self (n - 1)) (self (n - 1)) );
              (1, map2 (fun a b -> Ast.Random (a, b)) (return (Ast.Int 0)) (self (n - 1)));
            ])
      2
  in
  let gen_relop = oneofl Ast.[ Eq; Ne; Lt; Le; Gt; Ge ] in
  let gen_trigger ~has_timer =
    let base =
      [
        (3, map (fun m -> Ast.T_recv m) (ident msg_pool));
        (2, return Ast.T_onload);
        (1, return Ast.T_onexit);
        (1, return Ast.T_onerror);
        (1, map (fun f -> Ast.T_before f) (ident fn_pool));
        (1, map (fun f -> Ast.T_after f) (ident fn_pool));
      ]
    in
    frequency (if has_timer then (2, return Ast.T_timer) :: base else base)
  in
  let gen_dest ~vars ~is_recv =
    let base =
      [
        (2, return (Ast.D_instance "P1"));
        (2, map (fun e -> Ast.D_indexed ("G1", e)) (gen_expr vars));
        (1, return (Ast.D_group "G1"));
      ]
    in
    frequency (if is_recv then (1, return Ast.D_sender) :: base else base)
  in
  let gen_service vars =
    frequency
      [
        (3, return None);
        (1, map (fun e -> Some (Ast.Svc_ckpt e)) (gen_expr vars));
        (1, return (Some Ast.Svc_sched));
        (1, return (Some Ast.Svc_disp));
      ]
  in
  let gen_action ~node_ids ~vars ~is_recv =
    frequency
      ([
         (3, map (fun n -> Ast.A_goto n) (ident node_ids));
         ( 3,
           map2 (fun m d -> Ast.A_send (m, d)) (ident msg_pool) (gen_dest ~vars ~is_recv) );
         (1, map (fun s -> Ast.A_halt s) (gen_service vars));
         (1, map (fun s -> Ast.A_stop s) (gen_service vars));
         (1, map (fun s -> Ast.A_continue s) (gen_service vars));
       ]
      @
      if vars = [] then []
      else [ (2, map2 (fun v e -> Ast.A_assign (v, e)) (ident vars) (gen_expr vars)) ])
  in
  let gen_transition ~node_ids ~vars ~has_timer =
    gen_trigger ~has_timer >>= fun trigger ->
    let is_recv = match trigger with Ast.T_recv _ -> true | _ -> false in
    list_size (int_range 0 2)
      (map3 (fun op a b -> (op, a, b)) gen_relop (gen_expr vars) (gen_expr vars))
    >>= fun conds ->
    list_size (int_range 1 3) (gen_action ~node_ids ~vars ~is_recv) >>= fun actions ->
    return
      { Ast.t_loc = Loc.dummy; guard = { Ast.trigger = Some trigger; conds }; actions }
  in
  int_range 1 3 >>= fun n_nodes ->
  let node_ids = List.init n_nodes (fun i -> string_of_int (i + 1)) in
  int_range 0 2 >>= fun n_vars ->
  let vars = List.filteri (fun i _ -> i < n_vars) var_pool in
  (* daemon variable initialisers may only use previously declared vars *)
  let rec gen_var_decls seen = function
    | [] -> return []
    | v :: rest ->
        gen_expr seen >>= fun e ->
        gen_var_decls (v :: seen) rest >>= fun tail -> return ((v, e) :: tail)
  in
  gen_var_decls [] vars >>= fun d_vars ->
  let gen_node id =
    bool >>= fun has_timer ->
    (if has_timer then gen_expr vars >>= fun e -> return (Some ("t", e)) else return None)
    >>= fun n_timer ->
    list_size (int_range 0 3) (gen_transition ~node_ids ~vars ~has_timer) >>= fun ts ->
    return { Ast.n_loc = Loc.dummy; n_id = id; n_always = []; n_timer; n_transitions = ts }
  in
  flatten_l (List.map gen_node node_ids) >>= fun d_nodes ->
  int_range 2 6 >>= fun group_size ->
  return
    {
      Ast.daemons = [ { Ast.d_loc = Loc.dummy; d_name = "D"; d_vars; d_nodes } ];
      deployments =
        [
          Ast.Dep_singleton
            { dep_loc = Loc.dummy; inst = "P1"; daemon = "D"; machine = group_size };
          Ast.Dep_group
            {
              dep_loc = Loc.dummy;
              inst = "G1";
              count = group_size;
              daemon = "D";
              mach_lo = 0;
              mach_hi = group_size - 1;
            };
        ];
    }

let prop_program_pipeline =
  QCheck.Test.make ~name:"random programs: print/parse/sema/compile" ~count:300
    (QCheck.make ~print:Pp.program_to_string gen_program)
    (fun program ->
      let printed = Pp.program_to_string program in
      match Parser.parse_result printed with
      | Error msg -> QCheck.Test.fail_reportf "re-parse failed: %s\n%s" msg printed
      | Ok reparsed ->
          (* Compare after semantic analysis: the parser leaves bare group
             destinations as instances until Sema classifies them. *)
          if
            not
              (Ast.equal_program (Sema.check program) (Sema.check reparsed))
          then
            QCheck.Test.fail_reportf "round-trip mismatch:\n%s\n--- reparsed ---\n%s" printed
              (Pp.program_to_string reparsed)
          else (
            match Compile.compile_source printed with
            | Ok plan ->
                if plan.Compile.automata = [] then
                  QCheck.Test.fail_reportf "empty plan:\n%s" printed
                else true
            | Error msg -> QCheck.Test.fail_reportf "compile failed: %s\n%s" msg printed))

let prop_lexer_total =
  QCheck.Test.make ~name:"lexer/parser never crash on garbage" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 60) Gen.printable)
    (fun src ->
      match Parser.parse_result src with Ok _ -> true | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Sema *)

let check_err ?params src expected_fragment =
  match Sema.check_result ?params (Parser.parse src) with
  | Error msg ->
      let re = Str.regexp_string expected_fragment in
      check_bool
        (Printf.sprintf "error %S contains %S" msg expected_fragment)
        true
        (try
           ignore (Str.search_forward re msg 0);
           true
         with Not_found -> false)
  | Ok _ -> Alcotest.failf "expected error containing %S" expected_fragment

let test_sema_unbound_var () = check_err "Daemon D { node 1: x > 0 -> goto 1; }" "unbound variable x"

let test_sema_param_substitution () =
  let p =
    Sema.check ~params:[ ("X", 7) ] (Parser.parse "Daemon D { int n = X; node 1: }")
  in
  match (List.hd p.Ast.daemons).Ast.d_vars with
  | [ ("n", Ast.Int 7) ] -> ()
  | _ -> Alcotest.fail "parameter not substituted"

let test_sema_goto_unknown () =
  check_err "Daemon D { node 1: onload -> goto 9; }" "goto to unknown node 9"

let test_sema_duplicate_node () =
  check_err "Daemon D { node 1: node 1: }" "duplicate node 1"

let test_sema_timer_guard_without_timer () =
  check_err "Daemon D { node 1: timer -> goto 1; }" "declares no timer"

let test_sema_sender_outside_recv () =
  check_err "Daemon D { node 1: onload -> !m(FAIL_SENDER); }" "FAIL_SENDER"

let test_sema_shadowing () =
  check_err "Daemon D { int x = 1; node 1: always int x = 2; }" "shadows a daemon variable"

let test_sema_assign_undeclared () =
  check_err "Daemon D { node 1: onload -> y = 1; }" "undeclared variable y"

let test_sema_group_resolution () =
  let p =
    Sema.check
      (Parser.parse
         "Daemon D { node 1: onload -> !m(G1), !m(P1); } P1 : D on machine 9; G1[2] : D on \
          machines 0 .. 1;")
  in
  let d = List.hd p.Ast.daemons in
  let t = List.hd (List.hd d.Ast.d_nodes).Ast.n_transitions in
  match t.Ast.actions with
  | [ Ast.A_send (_, Ast.D_group "G1"); Ast.A_send (_, Ast.D_instance "P1") ] -> ()
  | _ -> Alcotest.fail "bare group name should broadcast, singleton stays instance"

let test_sema_unknown_dest () =
  check_err
    "Daemon D { node 1: onload -> !m(Q); } P1 : D on machine 0;"
    "not a deployed instance"

let test_sema_bad_group_arity () =
  check_err "Daemon D { node 1: } G1[5] : D on machines 0 .. 2;" "spans 3 machines"

let test_sema_unknown_daemon_in_deployment () =
  check_err "Daemon D { node 1: } P1 : Nope on machine 0;" "unknown daemon"

(* ------------------------------------------------------------------ *)
(* Compile *)

let compile src ?params () =
  match Compile.compile_source ?params src with
  | Ok plan -> plan
  | Error msg -> Alcotest.failf "compile failed: %s" msg

let test_compile_slots () =
  let plan =
    compile
      "Daemon D { int a = 1; int b = 2; node 1: always int c = a + b; time t = 5; timer -> \
       c = c + 1, goto 2; node 2: always int d = 0; }"
      ()
  in
  let a = Option.get (Compile.automaton plan "D") in
  check_int "4 slots" 4 (Automaton.var_count a);
  check_int "2 nodes" 2 (Automaton.node_count a);
  check_bool "node lookup" true (Automaton.node_index a "2" = Some 1)

let test_compile_goto_indices () =
  let plan = compile "Daemon D { node a: onload -> goto b; node b: onexit -> goto a; }" () in
  let a = Option.get (Compile.automaton plan "D") in
  (match (List.hd a.Automaton.nodes.(0).Automaton.transitions).Automaton.actions with
  | [ Automaton.C_goto 1 ] -> ()
  | _ -> Alcotest.fail "goto b should be index 1");
  match (List.hd a.Automaton.nodes.(1).Automaton.transitions).Automaton.actions with
  | [ Automaton.C_goto 0 ] -> ()
  | _ -> Alcotest.fail "goto a should be index 0"

let test_compile_messages () =
  let plan =
    compile "Daemon D { node 1: ?ok -> !crash(P1), goto 1; ?no -> goto 1; } P1 : D on machine 0;"
      ()
  in
  let a = Option.get (Compile.automaton plan "D") in
  check_bool "sent" true (Automaton.messages_sent a = [ "crash" ]);
  check_bool "received" true (Automaton.messages_received a = [ "no"; "ok" ])

let test_compile_paper_scenarios () =
  List.iter
    (fun (name, src) ->
      match Compile.compile_source src with
      | Ok plan -> check_bool (name ^ " has automata") true (plan.Compile.automata <> [])
      | Error msg -> Alcotest.failf "%s failed to compile: %s" name msg)
    Paper_scenarios.all

let test_compile_dot_output () =
  let plan = compile (Paper_scenarios.synchronized ~n_machines:8 ~period:50) () in
  let a = Option.get (Compile.automaton plan "ADVnodes") in
  let dot = Codegen.to_dot a in
  check_bool "digraph" true (String.length dot > 20 && String.sub dot 0 7 = "digraph")

let test_compile_dump () =
  let plan = compile (Paper_scenarios.frequency ~n_machines:8 ~period:50) () in
  let dump = Codegen.dump plan in
  check_bool "mentions ADV1" true
    (try
       ignore (Str.search_forward (Str.regexp_string "ADV1") dump 0);
       true
     with Not_found -> false)

(* ------------------------------------------------------------------ *)
(* Tool comparison (Table, §2.1) *)

let test_tool_comparison () =
  check_bool "FAIL-FCI satisfies all" true
    (List.for_all Tool_comparison.fail_fci.Tool_comparison.supports Tool_comparison.criteria);
  check_bool "LOKI lacks expressiveness" false
    (Tool_comparison.loki.Tool_comparison.supports Tool_comparison.High_expressiveness);
  check_bool "NFTAPE lacks scalability" false
    (Tool_comparison.nftape.Tool_comparison.supports Tool_comparison.Scalability);
  check_bool "NFTAPE needs code modification" false
    (Tool_comparison.nftape.Tool_comparison.supports Tool_comparison.No_code_modification);
  let table = Tool_comparison.render () in
  check_int "8 lines" 8
    (List.length (String.split_on_char '\n' (String.trim table)))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_expr_roundtrip; prop_program_pipeline; prop_lexer_total ]
  in
  Alcotest.run "fail_lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "symbols" `Quick test_lexer_symbols;
          Alcotest.test_case "keywords" `Quick test_lexer_keywords;
          Alcotest.test_case "idents and ints" `Quick test_lexer_idents_ints;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "locations" `Quick test_lexer_locations;
          Alcotest.test_case "illegal input" `Quick test_lexer_illegal;
        ] );
      ( "parser",
        [
          Alcotest.test_case "minimal daemon" `Quick test_parse_minimal;
          Alcotest.test_case "expr precedence" `Quick test_parse_expr_precedence;
          Alcotest.test_case "expr associativity" `Quick test_parse_expr_assoc;
          Alcotest.test_case "transition" `Quick test_parse_transition;
          Alcotest.test_case "timer and always" `Quick test_parse_timer_always;
          Alcotest.test_case "two timers rejected" `Quick test_parse_two_timers_rejected;
          Alcotest.test_case "two triggers rejected" `Quick test_parse_two_triggers_rejected;
          Alcotest.test_case "deployment" `Quick test_parse_deployment;
          Alcotest.test_case "FAIL_SENDER dest" `Quick test_parse_sender_dest;
          Alcotest.test_case "before trigger" `Quick test_parse_before;
          Alcotest.test_case "set and watch" `Quick test_parse_set_and_watch;
          Alcotest.test_case "net actions" `Quick test_parse_net_actions;
          Alcotest.test_case "topology destinations" `Quick test_parse_topo_dests;
          Alcotest.test_case "service actions" `Quick test_parse_service_actions;
          Alcotest.test_case "degrade bad field" `Quick test_parse_degrade_bad_field;
          Alcotest.test_case "error location" `Quick test_parse_error_location;
        ] );
      ( "pretty-printer",
        [
          Alcotest.test_case "paper scenarios round-trip" `Quick test_roundtrip_paper_scenarios;
          Alcotest.test_case "edge cases round-trip" `Quick test_roundtrip_edge_cases;
          Alcotest.test_case "net actions round-trip" `Quick test_roundtrip_net_actions;
          Alcotest.test_case "service actions round-trip" `Quick test_roundtrip_service_actions;
          Alcotest.test_case "topology destinations round-trip" `Quick test_roundtrip_topo_dests;
          Alcotest.test_case "scenario injections round-trip" `Quick
            test_scenario_injection_roundtrip;
          Alcotest.test_case "scenario files round-trip" `Quick test_roundtrip_scenario_files;
        ] );
      ( "sema",
        [
          Alcotest.test_case "unbound variable" `Quick test_sema_unbound_var;
          Alcotest.test_case "parameter substitution" `Quick test_sema_param_substitution;
          Alcotest.test_case "goto unknown" `Quick test_sema_goto_unknown;
          Alcotest.test_case "duplicate node" `Quick test_sema_duplicate_node;
          Alcotest.test_case "timer guard without timer" `Quick test_sema_timer_guard_without_timer;
          Alcotest.test_case "sender outside recv" `Quick test_sema_sender_outside_recv;
          Alcotest.test_case "shadowing" `Quick test_sema_shadowing;
          Alcotest.test_case "assign undeclared" `Quick test_sema_assign_undeclared;
          Alcotest.test_case "group resolution" `Quick test_sema_group_resolution;
          Alcotest.test_case "unknown destination" `Quick test_sema_unknown_dest;
          Alcotest.test_case "bad group arity" `Quick test_sema_bad_group_arity;
          Alcotest.test_case "unknown daemon in deployment" `Quick
            test_sema_unknown_daemon_in_deployment;
        ] );
      ( "compile",
        [
          Alcotest.test_case "slot assignment" `Quick test_compile_slots;
          Alcotest.test_case "goto indices" `Quick test_compile_goto_indices;
          Alcotest.test_case "message vocabulary" `Quick test_compile_messages;
          Alcotest.test_case "paper scenarios compile" `Quick test_compile_paper_scenarios;
          Alcotest.test_case "dot output" `Quick test_compile_dot_output;
          Alcotest.test_case "dump" `Quick test_compile_dump;
        ] );
      ("table", [ Alcotest.test_case "tool comparison" `Quick test_tool_comparison ]);
      ("properties", qsuite);
    ]
