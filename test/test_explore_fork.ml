(* Tests for the prefix-sharing fork scheduler and the coverage corpus:

   - fork-vs-replay byte-identical reports across all five protocol
     backends, on a >= 3-fault sampled configuration;
   - --jobs invariance: fork at jobs 1 and 4 and replay at jobs 1 and 4
     all render the same JSON;
   - shrink-oracle memoization (probes_saved) on a real witness;
   - corpus save -> resume round-trip, plus the exact refusal messages
     for non-corpus directories and incompatible configurations;
   - Plan.of_key as the inverse of Plan.key, with its error messages.

   Process structure: the OCaml runtime permanently refuses [Unix.fork]
   once the process has ever created a domain, so every fork campaign
   below runs eagerly at module initialization, before the first
   replay at jobs > 1 spawns [Par.map] workers.  The Alcotest cases
   only compare the precomputed results. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

module Plan = Explore.Plan
module Corpus = Explore.Corpus

(* ------------------------------------------------------------------ *)
(* Campaign under the seeded vcl dispatcher race: known to go buggy on
   second strikes inside a recovery wave, so the report has witnesses
   to exercise the shrink memo. *)

let demo_spec () =
  let n_ranks = 4 and n_machines = 8 in
  let app =
    Workload.Stencil.app
      { Workload.Stencil.iterations = 60; compute_time = 0.5; msg_bytes = 5_000; jitter = 0.0 }
      ~n_ranks
  in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.protocol = Mpivcl.Config.Non_blocking;
      wave_interval = 10.0;
      term_straggler_prob = 0.0;
      dispatcher_buggy = false;
      vcl_seeded_race = true;
    }
  in
  {
    (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes:1_000_000) with
    Failmpi.Run.timeout = 300.0;
    seed = 1L;
  }

(* max_faults 3 with budget past the 1-2 fault grid, so the seeded
   sampler contributes >= 3-fault plans to the campaign. *)
let demo_config =
  {
    (Explore.default_config ~n_machines:8 ~targets:[ 0; 1; 2; 3 ] ~buckets:[ 12; 3 ]) with
    Explore.max_faults = 3;
    budget = 90;
  }

(* The other four backends run the CLI's NAS BT deployment. *)
let backend_spec name =
  let (module B : Failmpi.Backend.S) =
    match Failmpi.Backend.find name with
    | Some b -> b
    | None -> Alcotest.failf "backend %s not registered" name
  in
  let n_ranks = 4 and replicas = 2 in
  let n_machines = B.default_machines ~n_ranks ~replicas in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.protocol = B.protocol ~replicas;
    }
  in
  let klass =
    match Workload.Bt_model.klass_of_string "A" with
    | Some k -> k
    | None -> assert false
  in
  ( {
      (Experiments.Harness.bt_spec ~cfg ~klass ~n_ranks ~n_machines ~scenario:None ()) with
      Failmpi.Run.seed = 1L;
      timeout = 600.0;
    },
    {
      (Explore.default_config ~n_machines ~targets:[ 0; 1 ] ~buckets:[ 20; 10 ]) with
      Explore.max_faults = 3;
      budget = 30;
    } )

let other_backends = [ "blocking"; "v2"; "replication"; "ulfm" ]

(* ------------------------------------------------------------------ *)
(* Phase 1 — every fork campaign, before any domain exists. *)

let fork_j1 = Explore.run_spec ~jobs:1 ~fork:true demo_config ~spec:(demo_spec ())
let fork_j4 = Explore.run_spec ~jobs:4 ~fork:true demo_config ~spec:(demo_spec ())

let backend_forked =
  List.map
    (fun name ->
      let spec, cfg = backend_spec name in
      (name, fst (Explore.run_spec ~jobs:4 ~fork:true cfg ~spec)))
    other_backends

(* Corpus round-trip (fork mode, so it also belongs to phase 1). *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let corpus_dir = Filename.concat (Filename.get_temp_dir_name ()) "failmpi_test_corpus"
let () = rm_rf corpus_dir
let corpus_cfg budget = { demo_config with Explore.budget }
let corpus_r1 = fst (Explore.run_spec ~jobs:1 ~fork:true ~corpus:corpus_dir (corpus_cfg 20) ~spec:(demo_spec ()))
let corpus_r2 = fst (Explore.run_spec ~jobs:1 ~fork:true ~corpus:corpus_dir (corpus_cfg 40) ~spec:(demo_spec ()))

(* ------------------------------------------------------------------ *)
(* Phase 2 — replays; jobs 4 spawns domains, so forks are done. *)

let replay_j1 = Explore.run_spec ~jobs:1 ~fork:false demo_config ~spec:(demo_spec ())
let replay_j4 = Explore.run_spec ~jobs:4 ~fork:false demo_config ~spec:(demo_spec ())

let backend_replayed =
  List.map
    (fun name ->
      let spec, cfg = backend_spec name in
      (name, fst (Explore.run_spec ~jobs:4 ~fork:false cfg ~spec)))
    other_backends

(* ------------------------------------------------------------------ *)
(* Fork-vs-replay equivalence *)

let json (report, _stats) = Explore.to_json report

let test_vcl_fork_equals_replay () =
  check_str "fork = replay, byte for byte" (json replay_j1) (json fork_j4)

let test_jobs_invariance () =
  check_str "fork jobs 1 = fork jobs 4" (json fork_j1) (json fork_j4);
  check_str "replay jobs 1 = replay jobs 4" (json replay_j1) (json replay_j4)

let test_sampled_faults_present () =
  let report, stats = fork_j4 in
  check_int "full campaign ran" demo_config.Explore.budget (List.length report.Explore.records);
  check_bool "sampler contributed 3-fault plans" true
    (List.exists
       (fun rc -> List.length rc.Explore.plan.Plan.faults >= 3)
       report.Explore.records);
  check_bool "the scheduler actually forked" true (stats.Explore.Prefix.forks > 0);
  check_bool "witnesses found under the seeded race" true (report.Explore.minimized <> [])

let test_backends_fork_equals_replay () =
  List.iter2
    (fun (name, forked) (name', replayed) ->
      check_str "same backend" name name';
      check_str (name ^ ": fork = replay") (Explore.to_json replayed) (Explore.to_json forked))
    backend_forked backend_replayed

(* ------------------------------------------------------------------ *)
(* Shrink memo *)

let test_shrink_memo () =
  let report, _ = fork_j4 in
  check_bool "has witnesses to shrink" true (report.Explore.minimized <> []);
  List.iter
    (fun m ->
      check_bool "shrinking probed the oracle" true (m.Explore.probes > 0);
      check_bool "memo saved probes" true (m.Explore.probes_saved > 0))
    report.Explore.minimized;
  (* The memo must not change the outcome: replay path shrinks the same
     witnesses to the same plans (already covered by byte-equality, but
     spell the invariant out). *)
  let replay_report, _ = replay_j1 in
  List.iter2
    (fun m m' ->
      check_str "same minimized plan" (Plan.key m.Explore.min_plan) (Plan.key m'.Explore.min_plan);
      check_int "same probes" m.Explore.probes m'.Explore.probes;
      check_int "same probes_saved" m.Explore.probes_saved m'.Explore.probes_saved)
    report.Explore.minimized replay_report.Explore.minimized

(* ------------------------------------------------------------------ *)
(* Corpus *)

let space_of cfg =
  {
    Corpus.n_machines = cfg.Explore.n_machines;
    targets = cfg.Explore.targets;
    buckets = cfg.Explore.buckets;
    kinds = cfg.Explore.kinds;
    max_faults = cfg.Explore.max_faults;
    sample_seed = cfg.Explore.sample_seed;
  }

let plan_keys report =
  List.map (fun rc -> Plan.key rc.Explore.plan) report.Explore.records

let test_corpus_roundtrip () =
  check_int "first campaign ran its budget" 20 (List.length corpus_r1.Explore.records);
  check_int "resumed campaign ran its budget" 40 (List.length corpus_r2.Explore.records);
  (* Resume skips every plan the first campaign tried: the two runs are
     disjoint, the freed budget went to fresh plans and pool mutants. *)
  let tried1 = plan_keys corpus_r1 in
  check_bool "no plan ran twice" true
    (List.for_all (fun k -> not (List.mem k tried1)) (plan_keys corpus_r2));
  match Corpus.load ~dir:corpus_dir ~space:(space_of demo_config) with
  | Error e -> Alcotest.failf "corpus did not load back: %s" e
  | Ok c ->
      check_int "two generations saved" 2 (Corpus.generation c);
      check_int "every run recorded as tried" 60
        (List.length (List.filter (Corpus.tried c) (tried1 @ plan_keys corpus_r2)));
      check_bool "pool holds coverage pioneers" true (Corpus.pool c <> []);
      check_bool "signatures accumulated" true (Corpus.seen_signatures c > 0)

let test_corpus_refusals () =
  let space = space_of demo_config in
  (* Not a corpus: a directory without a meta file. *)
  let junk = Filename.concat (Filename.get_temp_dir_name ()) "failmpi_test_notcorpus" in
  rm_rf junk;
  Sys.mkdir junk 0o755;
  let oc = open_out (Filename.concat junk "stuff") in
  close_out oc;
  (match Corpus.load ~dir:junk ~space with
  | Ok _ -> Alcotest.fail "junk directory accepted as a corpus"
  | Error e ->
      check_str "refusal message" (junk ^ " is not a failmpi-explore corpus (no meta file)") e);
  rm_rf junk;
  (* Incompatible configuration: same directory, different max_faults. *)
  let other = { space with Corpus.max_faults = space.Corpus.max_faults + 1 } in
  match Corpus.load ~dir:corpus_dir ~space:other with
  | Ok _ -> Alcotest.fail "incompatible corpus accepted"
  | Error e ->
      check_str "refusal message"
        (Printf.sprintf "corpus %s is incompatible with this configuration (corpus: %s; campaign: %s)"
           corpus_dir
           (Corpus.space_fingerprint space)
           (Corpus.space_fingerprint other))
        e

(* ------------------------------------------------------------------ *)
(* Plan.of_key *)

let test_of_key_roundtrip () =
  let plans =
    [
      { Plan.n_machines = 8; faults = [ { Plan.machine = 3; anchor = Plan.After 12; kind = Plan.Kill } ] };
      {
        Plan.n_machines = 8;
        faults =
          [
            { Plan.machine = 0; anchor = Plan.After 5; kind = Plan.Freeze { thaw = 8 } };
            { Plan.machine = 2; anchor = Plan.After 7; kind = Plan.Partition };
            { Plan.machine = 2; anchor = Plan.After 9; kind = Plan.Heal };
          ];
      };
      {
        Plan.n_machines = 10;
        faults =
          [
            { Plan.machine = 1; anchor = Plan.After 20; kind = Plan.Degrade { loss = 50; latency = 2 } };
            { Plan.machine = 7; anchor = Plan.On_reload { nth = 5; delay = 2 }; kind = Plan.Kill };
          ];
      };
    ]
  in
  List.iter
    (fun p ->
      match Plan.of_key ~n_machines:p.Plan.n_machines (Plan.key p) with
      | Ok q -> check_bool (Plan.key p) true (Plan.equal p q)
      | Error e -> Alcotest.failf "of_key failed on %s: %s" (Plan.key p) e)
    plans

let test_of_key_errors () =
  (match Plan.of_key ~n_machines:8 "" with
  | Error e -> check_str "empty" "empty plan key" e
  | Ok _ -> Alcotest.fail "empty key accepted");
  match Plan.of_key ~n_machines:8 "warp@3+12" with
  | Error e -> check_str "bad kind" "malformed fault key \"warp@3+12\"" e
  | Ok _ -> Alcotest.fail "malformed key accepted"

let () =
  Alcotest.run "explore_fork"
    [
      ( "equivalence",
        [
          Alcotest.test_case "vcl fork = replay" `Quick test_vcl_fork_equals_replay;
          Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance;
          Alcotest.test_case ">= 3-fault sampled campaign" `Quick test_sampled_faults_present;
          Alcotest.test_case "all backends fork = replay" `Quick test_backends_fork_equals_replay;
        ] );
      ("memo", [ Alcotest.test_case "shrink probes memoized" `Quick test_shrink_memo ]);
      ( "corpus",
        [
          Alcotest.test_case "save -> resume round-trip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "refusal messages" `Quick test_corpus_refusals;
        ] );
      ( "plan keys",
        [
          Alcotest.test_case "of_key round-trip" `Quick test_of_key_roundtrip;
          Alcotest.test_case "of_key errors" `Quick test_of_key_errors;
        ] );
    ]
