(* Tests for the public Failmpi API: spec construction, outcome
   classification (completed / non-terminating / buggy), checksum
   validation, and end-to-end paper-scenario behaviour on small
   clusters. *)

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

let small_params = { Workload.Stencil.iterations = 60; compute_time = 0.5; msg_bytes = 5_000; jitter = 0.0 }

let small_spec ?(n_ranks = 4) ?(n_machines = 8) ?scenario ?(buggy = true) ?(timeout = 400.0) () =
  let app = Workload.Stencil.app small_params ~n_ranks in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.wave_interval = 10.0;
      dispatcher_buggy = buggy;
      term_straggler_prob = 0.0;
    }
  in
  {
    (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes:1_000_000) with
    Failmpi.Run.scenario;
    timeout;
  }

let expected = Workload.Stencil.reference_checksum small_params ~n_ranks:4

let test_no_faults_completes () =
  let r = Failmpi.Run.execute ~expected_checksum:expected (small_spec ()) in
  (match r.Failmpi.Run.outcome with
  | Failmpi.Run.Completed t -> check_bool "plausible time" true (t > 29.0 && t < 45.0)
  | _ -> Alcotest.fail "expected completion");
  check_bool "checksums ok" true (r.Failmpi.Run.checksum_ok = Some true);
  check_bool "waves committed" true ((Failmpi.Run.committed_waves r) >= 1);
  check_int "no faults" 0 r.Failmpi.Run.injected_faults;
  check_int "no recoveries" 0 (Failmpi.Run.recoveries r)

let test_frequency_scenario_recovers () =
  let scenario = Fail_lang.Paper_scenarios.frequency ~n_machines:8 ~period:15 in
  let r = Failmpi.Run.execute ~expected_checksum:expected (small_spec ~scenario ()) in
  check_bool "completed" true
    (match r.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false);
  check_bool "faults injected" true (r.Failmpi.Run.injected_faults >= 1);
  check_bool "recovered" true ((Failmpi.Run.recoveries r) >= 1);
  check_bool "checksums still ok" true (r.Failmpi.Run.checksum_ok = Some true)

let test_state_sync_is_buggy () =
  (* Figure 10/11 on a small cluster: the historical dispatcher must
     freeze; classification = Buggy. *)
  let scenario = Fail_lang.Paper_scenarios.state_synchronized ~n_machines:8 ~period:15 in
  let r = Failmpi.Run.execute (small_spec ~scenario ()) in
  check_bool "buggy" true (r.Failmpi.Run.outcome = Failmpi.Run.Buggy);
  check_bool "confused" true (Failmpi.Run.confused r);
  check_int "two faults" 2 r.Failmpi.Run.injected_faults

let test_state_sync_fixed_dispatcher_survives () =
  let scenario = Fail_lang.Paper_scenarios.state_synchronized ~n_machines:8 ~period:15 in
  let r =
    Failmpi.Run.execute ~expected_checksum:expected (small_spec ~scenario ~buggy:false ())
  in
  check_bool "completed" true
    (match r.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false);
  check_bool "not confused" false (Failmpi.Run.confused r);
  check_bool "checksums ok" true (r.Failmpi.Run.checksum_ok = Some true)

let test_overwhelming_faults_non_terminating () =
  (* Faults faster than any wave can commit: rollback/crash cycle. *)
  let scenario = Fail_lang.Paper_scenarios.frequency ~n_machines:8 ~period:6 in
  let r = Failmpi.Run.execute (small_spec ~scenario ~timeout:300.0 ()) in
  check_bool "non-terminating" true (r.Failmpi.Run.outcome = Failmpi.Run.Non_terminating);
  check_bool "many faults" true (r.Failmpi.Run.injected_faults > 10)

let test_v2_survives_overwhelming_faults () =
  (* Same fault rate as [test_overwhelming_faults_non_terminating], but
     under sender-based message logging: only the failed rank restarts
     from its own recent checkpoint, so the run completes — the
     cross-protocol contrast of Ablations.protocol_comparison. *)
  let scenario = Fail_lang.Paper_scenarios.frequency ~n_machines:8 ~period:6 in
  let spec = small_spec ~scenario ~timeout:600.0 () in
  let spec =
    {
      spec with
      Failmpi.Run.cfg =
        { spec.Failmpi.Run.cfg with Mpivcl.Config.protocol = Mpivcl.Config.Sender_logging };
    }
  in
  let r = Failmpi.Run.execute ~expected_checksum:expected spec in
  check_bool "completed" true
    (match r.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false);
  check_bool "many faults survived" true (r.Failmpi.Run.injected_faults > 5);
  check_bool "checksums ok" true (r.Failmpi.Run.checksum_ok = Some true)

let test_checksum_mismatch_detected () =
  let r = Failmpi.Run.execute ~expected_checksum:12345 (small_spec ()) in
  check_bool "mismatch flagged" true (r.Failmpi.Run.checksum_ok = Some false)

let test_scenario_error_raises () =
  let spec = small_spec ~scenario:"Daemon Broken {" () in
  try
    ignore (Failmpi.Run.execute spec);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument msg ->
    check_bool "mentions scenario error" true
      (try
         ignore (Str.search_forward (Str.regexp_string "scenario error") msg 0);
         true
       with Not_found -> false)

let test_outcome_names () =
  check Alcotest.string "completed" "completed"
    (Failmpi.Run.outcome_name (Failmpi.Run.Completed 1.0));
  check Alcotest.string "non-terminating" "non-terminating"
    (Failmpi.Run.outcome_name Failmpi.Run.Non_terminating);
  check Alcotest.string "buggy" "buggy" (Failmpi.Run.outcome_name Failmpi.Run.Buggy)

let test_run_validation () =
  (* Absurd inputs are rejected up front with a clear message instead of
     crashing somewhere inside deployment. *)
  let spec = small_spec () in
  Alcotest.check_raises "zero ranks"
    (Invalid_argument "Run.execute: cfg.n_ranks must be positive (got 0)")
    (fun () ->
      ignore
        (Failmpi.Run.execute
           {
             spec with
             Failmpi.Run.cfg = { spec.Failmpi.Run.cfg with Mpivcl.Config.n_ranks = 0 };
           }));
  Alcotest.check_raises "more ranks than compute hosts"
    (Invalid_argument
       "Run.execute: n_compute (3) cannot seat 4 ranks — need at least one compute \
        host per rank")
    (fun () -> ignore (Failmpi.Run.execute { spec with Failmpi.Run.n_compute = 3 }));
  Alcotest.check_raises "zero regions"
    (Invalid_argument "Run.execute: regions must be >= 1 (got 0)")
    (fun () -> ignore (Failmpi.Run.execute { spec with Failmpi.Run.regions = Some 0 }))

let test_regions_equivalent () =
  (* Region placement is structural: a faulty run splits identically at
     any region count, down to recovery and wave counters. *)
  let scenario = Fail_lang.Paper_scenarios.frequency ~n_machines:8 ~period:15 in
  let run regions =
    let r =
      Failmpi.Run.execute ~expected_checksum:expected
        { (small_spec ~scenario ()) with Failmpi.Run.regions }
    in
    ( (match r.Failmpi.Run.outcome with
      | Failmpi.Run.Completed t -> Printf.sprintf "completed %.9f" t
      | o -> Failmpi.Run.outcome_name o),
      r.Failmpi.Run.injected_faults,
      r.Failmpi.Run.checksums,
      Failmpi.Backend.Metrics.counters r.Failmpi.Run.metrics )
  in
  check_bool "4 regions = 1 region" true (run (Some 1) = run (Some 4))

let test_determinism () =
  (* The whole experiment is a pure function of the seed. *)
  let scenario = Fail_lang.Paper_scenarios.frequency ~n_machines:8 ~period:15 in
  let run seed =
    let r =
      Failmpi.Run.execute { (small_spec ~scenario ()) with Failmpi.Run.seed }
    in
    ( Failmpi.Run.outcome_name r.Failmpi.Run.outcome,
      r.Failmpi.Run.injected_faults,
      (Failmpi.Run.recoveries r),
      Simkern.Trace.length r.Failmpi.Run.trace )
  in
  check_bool "same seed same run" true (run 42L = run 42L);
  let a = run 42L and b = run 43L in
  let _, _, _, la = a and _, _, _, lb = b in
  check_bool "different seeds differ" true (la <> lb || a <> b)

(* ------------------------------------------------------------------ *)
(* Experiments harness *)

let test_stats () =
  check_bool "mean" true (Experiments.Stats.mean [ 1.0; 2.0; 3.0 ] = Some 2.0);
  check_bool "mean empty" true (Experiments.Stats.mean [] = None);
  (match Experiments.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] with
  | Some s -> check (Alcotest.float 1e-9) "stddev" 2.138089935299395 s
  | None -> Alcotest.fail "stddev");
  check_bool "stddev singleton" true (Experiments.Stats.stddev [ 1.0 ] = None);
  check (Alcotest.float 1e-9) "percent" 25.0 (Experiments.Stats.percent ~total:8 2);
  check (Alcotest.float 1e-9) "percent zero total" 0.0 (Experiments.Stats.percent ~total:0 5);
  check_bool "median" true (Experiments.Stats.quantile 0.5 [ 1.0; 2.0; 3.0 ] = Some 2.0)

let test_aggregate () =
  let mk outcome =
    {
      Failmpi.Run.outcome;
      injected_faults = 2;
      metrics =
        {
          Failmpi.Backend.Metrics.zero with
          Failmpi.Backend.Metrics.recoveries = 1;
          committed_waves = 3;
          confused = (outcome = Failmpi.Run.Buggy);
        };
      checksums = [];
      checksum_ok = None;
      trace = Simkern.Trace.create ();
    }
  in
  let agg =
    Experiments.Harness.aggregate ~label:"x"
      [
        mk (Failmpi.Run.Completed 100.0);
        mk (Failmpi.Run.Completed 200.0);
        mk Failmpi.Run.Non_terminating;
        mk Failmpi.Run.Buggy;
      ]
  in
  check_int "runs" 4 agg.Experiments.Harness.runs;
  check_int "completed" 2 agg.Experiments.Harness.completed;
  check_bool "mean time" true (agg.Experiments.Harness.mean_time = Some 150.0);
  check (Alcotest.float 1e-9) "pct nonterm" 25.0 agg.Experiments.Harness.pct_non_terminating;
  check (Alcotest.float 1e-9) "pct buggy" 25.0 agg.Experiments.Harness.pct_buggy;
  check_int "no checksum failures" 0 agg.Experiments.Harness.checksum_failures

let test_render_table () =
  let agg =
    Experiments.Harness.aggregate ~label:"some-config"
      [
        {
          Failmpi.Run.outcome = Failmpi.Run.Completed 123.0;
          injected_faults = 0;
          metrics =
            {
              Failmpi.Backend.Metrics.zero with
              Failmpi.Backend.Metrics.committed_waves = 1;
            };
          checksums = [];
          checksum_ok = Some true;
          trace = Simkern.Trace.create ();
        };
      ]
  in
  let table = Experiments.Harness.render_table ~title:"T" [ agg ] in
  check_bool "has label" true
    (try
       ignore (Str.search_forward (Str.regexp_string "some-config") table 0);
       true
     with Not_found -> false);
  check_bool "has time" true
    (try
       ignore (Str.search_forward (Str.regexp_string "123") table 0);
       true
     with Not_found -> false)

let test_machines_for () =
  check_int "paper allocation" 53 (Experiments.Harness.machines_for 49);
  check_int "bt-25" 29 (Experiments.Harness.machines_for 25);
  Alcotest.check_raises "zero ranks"
    (Invalid_argument "Harness.machines_for: n_ranks must be positive (got 0)")
    (fun () -> ignore (Experiments.Harness.machines_for 0));
  Alcotest.check_raises "negative ranks"
    (Invalid_argument "Harness.machines_for: n_ranks must be positive (got -3)")
    (fun () -> ignore (Experiments.Harness.machines_for (-3)))

let test_replicate_seeds () =
  let seeds = ref [] in
  let _ =
    Experiments.Harness.replicate ~reps:3 ~base_seed:10 (fun ~seed ->
        seeds := seed :: !seeds;
        {
          Failmpi.Run.outcome = Failmpi.Run.Completed 1.0;
          injected_faults = 0;
          metrics = Failmpi.Backend.Metrics.zero;
          checksums = [];
          checksum_ok = None;
          trace = Simkern.Trace.create ();
        })
  in
  check_bool "sequential seeds" true (List.rev !seeds = [ 10L; 11L; 12L ])

let test_trace_analysis () =
  let scenario = Fail_lang.Paper_scenarios.frequency ~n_machines:8 ~period:15 in
  let r = Failmpi.Run.execute (small_spec ~scenario ()) in
  let s = Experiments.Trace_analysis.summarize r.Failmpi.Run.trace in
  check_int "fault count matches" r.Failmpi.Run.injected_faults
    (List.length s.Experiments.Trace_analysis.fault_times);
  check_int "recovery count matches" (Failmpi.Run.recoveries r)
    (List.length s.Experiments.Trace_analysis.recoveries);
  check_bool "recoveries closed" true
    (List.for_all
       (fun rec_ -> rec_.Experiments.Trace_analysis.rec_end <> None)
       s.Experiments.Trace_analysis.recoveries);
  check_bool "durations positive" true
    (List.for_all (fun d -> d > 0.0) (Experiments.Trace_analysis.recovery_durations s));
  check_bool "no confusion" true (s.Experiments.Trace_analysis.confusion_time = None);
  let report = Format.asprintf "%a" Experiments.Trace_analysis.pp s in
  check_bool "report mentions faults" true
    (try
       ignore (Str.search_forward (Str.regexp_string "faults injected") report 0);
       true
     with Not_found -> false)

let test_trace_analysis_confusion () =
  let scenario = Fail_lang.Paper_scenarios.state_synchronized ~n_machines:8 ~period:15 in
  let r = Failmpi.Run.execute (small_spec ~scenario ()) in
  let s = Experiments.Trace_analysis.summarize r.Failmpi.Run.trace in
  check_bool "confusion time recorded" true
    (s.Experiments.Trace_analysis.confusion_time <> None)

let test_events_csv () =
  let trace = Simkern.Trace.create () in
  Simkern.Trace.record trace ~time:1.5 ~source:"x" ~event:"ev" "detail, with comma";
  let csv = Experiments.Trace_analysis.events_csv trace in
  check_bool "header" true
    (String.length csv > 10 && String.sub csv 0 4 = "time");
  check_bool "quoted comma" true
    (try
       ignore (Str.search_forward (Str.regexp_string "\"detail, with comma\"") csv 0);
       true
     with Not_found -> false)

let test_aggs_csv () =
  let agg =
    Experiments.Harness.aggregate ~label:"cfg-a"
      [
        {
          Failmpi.Run.outcome = Failmpi.Run.Completed 10.0;
          injected_faults = 1;
          metrics =
            {
              Failmpi.Backend.Metrics.zero with
              Failmpi.Backend.Metrics.recoveries = 1;
              committed_waves = 2;
            };
          checksums = [];
          checksum_ok = Some true;
          trace = Simkern.Trace.create ();
        };
      ]
  in
  let csv = Experiments.Harness.aggs_csv [ agg ] in
  check_int "two lines" 2 (List.length (String.split_on_char '\n' (String.trim csv)));
  check_bool "has label" true
    (try
       ignore (Str.search_forward (Str.regexp_string "cfg-a,1,1,0,0,0,0,0,0,10.0") csv 0);
       true
     with Not_found -> false)

(* Degraded and aborted runs in the aggregate: a degraded run counts in
   the time statistics and the survivor mean, an aborted one in neither;
   neither inflates [completed]. *)
let test_aggregate_degraded () =
  let result outcome =
    {
      Failmpi.Run.outcome;
      injected_faults = 2;
      metrics = Failmpi.Backend.Metrics.zero;
      checksums = [];
      checksum_ok = None;
      trace = Simkern.Trace.create ();
    }
  in
  let agg =
    Experiments.Harness.aggregate ~label:"shrunk"
      [
        result (Failmpi.Run.Completed 10.0);
        result (Failmpi.Run.Degraded { at = 20.0; survivors = 7 });
        result (Failmpi.Run.Degraded { at = 30.0; survivors = 5 });
        result (Failmpi.Run.Aborted "no quorum");
      ]
  in
  check_int "completed" 1 agg.Experiments.Harness.completed;
  check_int "degraded" 2 agg.Experiments.Harness.degraded;
  check_int "aborted" 1 agg.Experiments.Harness.aborted;
  check (Alcotest.option (Alcotest.float 1e-9)) "mean over completed+degraded"
    (Some 20.0) agg.Experiments.Harness.mean_time;
  check (Alcotest.option (Alcotest.float 1e-9)) "mean survivors" (Some 6.0)
    agg.Experiments.Harness.mean_survivors;
  check (Alcotest.float 1e-9) "pct degraded" 50.0 agg.Experiments.Harness.pct_degraded;
  check (Alcotest.float 1e-9) "pct aborted" 25.0 agg.Experiments.Harness.pct_aborted

(* ------------------------------------------------------------------ *)
(* Shipped scenario files *)

let read_scenario name =
  let path = Filename.concat "../scenarios" name in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_scenario_files_compile () =
  List.iter
    (fun (file, params) ->
      match Fail_lang.Compile.compile_source ~params (read_scenario file) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" file msg)
    [
      ("random_crash.fail", [ ("PERIOD", 30) ]);
      ("cascade.fail", [ ("START", 20) ]);
      ("freeze_thaw.fail", [ ("PERIOD", 25) ]);
      ("wave_sniper.fail", [ ("DELAY", 10) ]);
      ( "shrink_storm.fail",
        [
          ("START", 25);
          ("STEP", 3);
          ("LAG", 2);
          ("K1", 1);
          ("K2", 5);
          ("K3", 7);
          ("VICTIM", 2);
        ] );
    ]

let run_scenario_file ?(n_ranks = 9) file params =
  let app = Workload.Stencil.app small_params ~n_ranks in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.wave_interval = 10.0;
      term_straggler_prob = 0.0;
    }
  in
  let spec =
    {
      (Failmpi.Run.default_spec ~app ~cfg ~n_compute:10 ~state_bytes:500_000) with
      Failmpi.Run.scenario = Some (read_scenario file);
      params;
      timeout = 500.0;
    }
  in
  Failmpi.Run.execute
    ~expected_checksum:(Workload.Stencil.reference_checksum small_params ~n_ranks)
    spec

let test_scenario_cascade () =
  let r = run_scenario_file "cascade.fail" [ ("START", 8) ] in
  check_bool "several faults" true (r.Failmpi.Run.injected_faults >= 2);
  check_bool "completed" true
    (match r.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false);
  check_bool "checksum" true (r.Failmpi.Run.checksum_ok = Some true)

let test_scenario_freeze_thaw () =
  (* Freezes slow the run down but never trigger failure detection. *)
  let r = run_scenario_file "freeze_thaw.fail" [ ("PERIOD", 12) ] in
  check_int "no crashes" 0 r.Failmpi.Run.injected_faults;
  check_int "no recoveries" 0 (Failmpi.Run.recoveries r);
  (match r.Failmpi.Run.outcome with
  | Failmpi.Run.Completed t -> check_bool "slower than fault-free" true (t > 31.0)
  | _ -> Alcotest.fail "expected completion");
  check_bool "checksum" true (r.Failmpi.Run.checksum_ok = Some true)

let test_scenario_wave_sniper () =
  let r = run_scenario_file "wave_sniper.fail" [ ("DELAY", 5) ] in
  check_int "exactly one fault" 1 r.Failmpi.Run.injected_faults;
  check_bool "completed" true
    (match r.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false);
  check_bool "checksum" true (r.Failmpi.Run.checksum_ok = Some true)

let test_delay_scenario_compiles () =
  let src = Experiments.Delay_experiment.scenario ~n_machines:10 ~delay:7 in
  match Fail_lang.Compile.compile_source src with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "delay scenario: %s" msg

let () =
  Alcotest.run "failmpi"
    [
      ( "run",
        [
          Alcotest.test_case "no faults completes" `Quick test_no_faults_completes;
          Alcotest.test_case "frequency scenario recovers" `Quick test_frequency_scenario_recovers;
          Alcotest.test_case "state-sync is buggy" `Quick test_state_sync_is_buggy;
          Alcotest.test_case "fixed dispatcher survives" `Quick
            test_state_sync_fixed_dispatcher_survives;
          Alcotest.test_case "overwhelming faults non-terminating" `Quick
            test_overwhelming_faults_non_terminating;
          Alcotest.test_case "V2 survives overwhelming faults" `Quick
            test_v2_survives_overwhelming_faults;
          Alcotest.test_case "checksum mismatch detected" `Quick test_checksum_mismatch_detected;
          Alcotest.test_case "scenario error raises" `Quick test_scenario_error_raises;
          Alcotest.test_case "outcome names" `Quick test_outcome_names;
          Alcotest.test_case "spec validation" `Quick test_run_validation;
          Alcotest.test_case "regions equivalent" `Quick test_regions_equivalent;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "harness",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "render table" `Quick test_render_table;
          Alcotest.test_case "machines_for" `Quick test_machines_for;
          Alcotest.test_case "replicate seeds" `Quick test_replicate_seeds;
          Alcotest.test_case "delay scenario compiles" `Quick test_delay_scenario_compiles;
          Alcotest.test_case "trace analysis" `Quick test_trace_analysis;
          Alcotest.test_case "trace analysis confusion" `Quick test_trace_analysis_confusion;
          Alcotest.test_case "events csv" `Quick test_events_csv;
          Alcotest.test_case "aggs csv" `Quick test_aggs_csv;
          Alcotest.test_case "aggregate degraded/aborted" `Quick test_aggregate_degraded;
        ] );
      ( "scenario-files",
        [
          Alcotest.test_case "all compile" `Quick test_scenario_files_compile;
          Alcotest.test_case "cascade" `Quick test_scenario_cascade;
          Alcotest.test_case "freeze/thaw" `Quick test_scenario_freeze_thaw;
          Alcotest.test_case "wave sniper" `Quick test_scenario_wave_sniper;
        ] );
    ]
