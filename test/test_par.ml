(* Tests for the Par domain pool and the parallel campaign path:

   - Par.map: input order, sequential/parallel identity, exception
     propagation, degenerate sizes;
   - Harness.campaign at --jobs 4 must be bit-identical to --jobs 1 on
     real BT runs (outcome, completion time, fault count, checksums);
   - the vcl golden fixed-seed runs of test_backend must reproduce
     exactly when executed on a 4-domain pool;
   - Backend.Registry lookups are safe under concurrent domains. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Par.map *)

let test_map_order () =
  let xs = List.init 37 Fun.id in
  check (Alcotest.list Alcotest.int) "squares in order"
    (List.map (fun x -> x * x) xs)
    (Par.map ~jobs:4 (fun x -> x * x) xs)

let test_map_matches_sequential () =
  let xs = List.init 101 (fun i -> i - 50) in
  let f x = (x * 7919) mod 104729 in
  check (Alcotest.list Alcotest.int) "jobs:4 = jobs:1"
    (Par.map ~jobs:1 f xs) (Par.map ~jobs:4 f xs)

let test_map_degenerate () =
  check (Alcotest.list Alcotest.int) "empty" [] (Par.map ~jobs:4 succ []);
  check (Alcotest.list Alcotest.int) "singleton" [ 2 ] (Par.map ~jobs:4 succ [ 1 ]);
  check (Alcotest.list Alcotest.int) "more jobs than items" [ 2; 3 ]
    (Par.map ~jobs:16 succ [ 1; 2 ])

exception Boom of int

let test_map_exception () =
  (* The first failure in input order is re-raised, after every job ran. *)
  let ran = Array.make 8 false in
  (try
     ignore
       (Par.map ~jobs:4
          (fun i ->
            ran.(i) <- true;
            if i = 2 || i = 5 then raise (Boom i))
          (List.init 8 Fun.id));
     Alcotest.fail "expected Boom"
   with Boom i -> check_int "first in input order" 2 i);
  check_bool "all jobs ran" true (Array.for_all Fun.id ran)

let test_map_seeds_order () =
  check (Alcotest.list Alcotest.int64) "seed order"
    [ 10L; 11L; 12L; 13L; 14L ]
    (Par.map_seeds ~jobs:3 ~reps:5 ~base_seed:10 (fun ~seed -> seed))

(* ------------------------------------------------------------------ *)
(* Parallel campaigns over real simulation runs *)

let fingerprint (r : Failmpi.Run.result) =
  ( (match r.Failmpi.Run.outcome with
    | Failmpi.Run.Completed t -> Printf.sprintf "completed %.9f" t
    | o -> Failmpi.Run.outcome_name o),
    r.Failmpi.Run.injected_faults,
    r.Failmpi.Run.checksums,
    r.Failmpi.Run.checksum_ok )

let fp_testable =
  Alcotest.(
    list
      (pair string
         (pair int
            (pair
               (list (pair int int))
               (option bool)))))

let flatten fps = List.map (fun (o, f, c, k) -> (o, (f, (c, k)))) fps

let bt_cells () =
  let n_ranks = 9 in
  let n_machines = Experiments.Harness.machines_for n_ranks in
  let scenario =
    Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:25)
  in
  let run ~scenario ~seed =
    Experiments.Harness.run_bt ~klass:Workload.Bt_model.A ~n_ranks ~n_machines
      ~scenario ~seed ()
  in
  [
    Experiments.Harness.cell ~tag:"faulty" ~reps:5 ~base_seed:300 (fun ~seed ->
        run ~scenario ~seed);
    Experiments.Harness.cell ~tag:"clean" ~reps:3 ~base_seed:700 (fun ~seed ->
        run ~scenario:None ~seed);
  ]

let test_campaign_parallel_identical () =
  (* >= 8 independent seeds across two cells; every observable of every
     run must match the sequential execution exactly. *)
  let seq = Experiments.Harness.campaign ~jobs:1 (bt_cells ()) in
  let par = Experiments.Harness.campaign ~jobs:4 (bt_cells ()) in
  check (Alcotest.list Alcotest.string) "cell tags in order"
    (List.map fst seq) (List.map fst par);
  List.iter2
    (fun (tag, seq_rs) (_, par_rs) ->
      check fp_testable (tag ^ " runs identical")
        (flatten (List.map fingerprint seq_rs))
        (flatten (List.map fingerprint par_rs)))
    seq par

(* Byte-identical reports at 4096 ranks: two fixed-seed fault-free
   stencil runs on a 4102-host cluster, executed sequentially and on a
   4-domain pool. Every per-run observable and the rendered campaign
   table must match exactly. Short (2-iteration) stencil plus the lazy
   daemon mesh keep the pair of 4096-rank runs in test-suite budget. *)

let big_cells () =
  let n_ranks = 4096 in
  let params =
    { Workload.Stencil.iterations = 2; compute_time = 0.5; msg_bytes = 10_000; jitter = 0.0 }
  in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.wave_interval = 20.0;
      init_delay_min = 0.1;
      init_delay_max = 0.1;
      term_straggler_prob = 0.0;
      store_jitter = 0.0;
      lazy_peer_mesh = true;
    }
  in
  let app = Workload.Stencil.app params ~n_ranks in
  let spec =
    {
      (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_ranks ~state_bytes:100_000) with
      Failmpi.Run.timeout = 600.0;
      trace_level = Simkern.Trace.Summary;
    }
  in
  [
    Experiments.Harness.cell ~tag:"bt-4096" ~reps:2 ~base_seed:500 (fun ~seed ->
        Failmpi.Run.execute { spec with Failmpi.Run.seed });
  ]

let test_campaign_4096_identical () =
  let seq = Experiments.Harness.campaign ~jobs:1 (big_cells ()) in
  let par = Experiments.Harness.campaign ~jobs:4 (big_cells ()) in
  List.iter2
    (fun (tag, seq_rs) (_, par_rs) ->
      List.iter
        (fun (r : Failmpi.Run.result) ->
          check_bool "completed" true
            (match r.Failmpi.Run.outcome with
            | Failmpi.Run.Completed _ -> true
            | _ -> false))
        seq_rs;
      check fp_testable (tag ^ " runs identical")
        (flatten (List.map fingerprint seq_rs))
        (flatten (List.map fingerprint par_rs)))
    seq par;
  let table results =
    Experiments.Harness.render_table ~title:"scale"
      (List.map (fun (tag, rs) -> Experiments.Harness.aggregate ~label:tag rs) results)
  in
  check_str "rendered report identical" (table seq) (table par)

(* The vcl golden runs of test_backend, reproduced on a 4-domain pool:
   same spec, same seeds, times pinned to the pre-refactor captures. *)

let golden_run ~seed =
  let n_ranks = 4 and n_machines = 8 in
  let app =
    Workload.Stencil.app
      { Workload.Stencil.iterations = 60; compute_time = 0.5; msg_bytes = 5_000; jitter = 0.0 }
      ~n_ranks
  in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.protocol = Mpivcl.Config.Non_blocking;
      wave_interval = 10.0;
      term_straggler_prob = 0.0;
    }
  in
  Failmpi.Run.execute
    {
      (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes:1_000_000) with
      Failmpi.Run.scenario =
        Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:15);
      timeout = 400.0;
      seed;
    }

let test_golden_under_parallelism () =
  let results =
    Par.map ~jobs:4 (fun seed -> golden_run ~seed) [ 1L; 7L; 1L; 7L ]
  in
  List.iter2
    (fun expected (r : Failmpi.Run.result) ->
      check_str "pinned completion time" expected
        (match r.Failmpi.Run.outcome with
        | Failmpi.Run.Completed t -> Printf.sprintf "%.6f" t
        | o -> Failmpi.Run.outcome_name o);
      check_int "pinned faults" 3 r.Failmpi.Run.injected_faults)
    [ "53.935736"; "51.763581"; "53.935736"; "51.763581" ]
    results

(* ------------------------------------------------------------------ *)
(* Deferred trace details under concurrent readers *)

let test_trace_lazy_concurrent_render () =
  (* Campaign workers share completed run results across domains; every
     deferred detail closure must render exactly once no matter how many
     domains read the trace simultaneously. *)
  let n = 200 in
  let t = Simkern.Trace.create () in
  let runs = Array.init n (fun _ -> Atomic.make 0) in
  for i = 0 to n - 1 do
    Simkern.Trace.record_lazy t ~time:(float_of_int i) ~source:"test" ~event:"lazy"
      (fun () ->
        Atomic.incr runs.(i);
        Printf.sprintf "detail %d" i)
  done;
  let reads =
    Par.map ~jobs:4
      (fun _ ->
        List.map (fun e -> e.Simkern.Trace.detail) (Simkern.Trace.entries t))
      (List.init 8 Fun.id)
  in
  let expected = List.init n (Printf.sprintf "detail %d") in
  List.iteri
    (fun i details ->
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "reader %d sees every detail" i)
        expected details)
    reads;
  Array.iteri
    (fun i c -> check_int (Printf.sprintf "closure %d ran exactly once" i) 1 (Atomic.get c))
    runs

(* ------------------------------------------------------------------ *)
(* Registry under concurrent lookups *)

let test_registry_concurrent_lookups () =
  let errors = Atomic.make 0 in
  let worker () =
    for _ = 1 to 1_000 do
      (match Failmpi.Backend.find "vcl" with
      | Some (module B : Failmpi.Backend.S) ->
          if B.name <> "vcl" then Atomic.incr errors
      | None -> Atomic.incr errors);
      if List.length (Failmpi.Backend.all ()) < 4 then Atomic.incr errors;
      match Failmpi.Backend.Registry.of_protocol Mpivcl.Config.Blocking with
      | (module B : Failmpi.Backend.S) ->
          if B.name <> "blocking" then Atomic.incr errors
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check_int "no lookup anomalies" 0 (Atomic.get errors)

let () =
  Alcotest.run "par"
    [
      ( "map",
        [
          Alcotest.test_case "order" `Quick test_map_order;
          Alcotest.test_case "matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "degenerate sizes" `Quick test_map_degenerate;
          Alcotest.test_case "exception propagation" `Quick test_map_exception;
          Alcotest.test_case "map_seeds order" `Quick test_map_seeds_order;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "parallel identical" `Quick test_campaign_parallel_identical;
          Alcotest.test_case "4096 ranks jobs 1 = jobs 4" `Quick test_campaign_4096_identical;
          Alcotest.test_case "golden under jobs 4" `Quick test_golden_under_parallelism;
        ] );
      ( "trace",
        [
          Alcotest.test_case "lazy details under concurrent readers" `Quick
            test_trace_lazy_concurrent_render;
        ] );
      ( "registry",
        [
          Alcotest.test_case "concurrent lookups" `Quick test_registry_concurrent_lookups;
        ] );
    ]
