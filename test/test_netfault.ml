(* Tests for the network perturbation layer (Net.Perturb) and its
   integration with the run harness:

   - backoff ladder and profile/spec validation;
   - perturb-off equivalence: a run with [Config.net = Some
     default_profile] (all dimensions zero) is bit-identical to one with
     no profile at all — the pristine fast path draws no RNG and reports
     no net counters;
   - fixed-seed determinism under loss, sequentially and across worker
     counts (jobs 1 = jobs 4);
   - partition-then-heal completes when the heal lands before connect
     retries exhaust; an unhealed partition verdicts net-hung, never
     buggy;
   - the FCI control plane executes net actions and [shutdown] drains
     every timer it armed (Engine.pending returns to 0). *)

open Simkern
module Perturb = Simnet.Net.Perturb
module Harness = Experiments.Harness

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let check_float = check (Alcotest.float 1e-12)

(* ------------------------------------------------------------------ *)
(* Backoff and validation *)

let test_backoff () =
  let b attempt = Perturb.backoff ~rto_initial:0.25 ~rto_max:4.0 ~attempt in
  check_float "attempt 0" 0.25 (b 0);
  check_float "attempt 1" 0.5 (b 1);
  check_float "attempt 2" 1.0 (b 2);
  check_float "attempt 3" 2.0 (b 3);
  check_float "attempt 4" 4.0 (b 4);
  check_float "capped" 4.0 (b 10);
  try
    ignore (b (-1));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let expect_invalid what f =
  try
    f ();
    Alcotest.failf "%s: expected Invalid_argument" what
  with Invalid_argument _ -> ()

let test_spec_validation () =
  Perturb.check_spec { Perturb.loss = 0.0; latency = 0.0; jitter = 0.0 };
  Perturb.check_spec { Perturb.loss = 1.0; latency = 3.0; jitter = 0.5 };
  expect_invalid "loss > 1" (fun () ->
      Perturb.check_spec { Perturb.loss = 1.5; latency = 0.0; jitter = 0.0 });
  expect_invalid "negative loss" (fun () ->
      Perturb.check_spec { Perturb.loss = -0.1; latency = 0.0; jitter = 0.0 });
  expect_invalid "negative latency" (fun () ->
      Perturb.check_spec { Perturb.loss = 0.0; latency = -1.0; jitter = 0.0 });
  expect_invalid "negative jitter" (fun () ->
      Perturb.check_spec { Perturb.loss = 0.0; latency = 0.0; jitter = -1.0 })

let test_profile_validation () =
  Perturb.check_profile Perturb.default_profile;
  expect_invalid "rto_initial 0" (fun () ->
      Perturb.check_profile { Perturb.default_profile with Perturb.rto_initial = 0.0 });
  expect_invalid "rto_max < rto_initial" (fun () ->
      Perturb.check_profile
        { Perturb.default_profile with Perturb.rto_initial = 2.0; rto_max = 1.0 });
  expect_invalid "max_attempts 0" (fun () ->
      Perturb.check_profile { Perturb.default_profile with Perturb.max_attempts = 0 });
  expect_invalid "bad base spec" (fun () ->
      Perturb.check_profile
        {
          Perturb.default_profile with
          Perturb.base = { Perturb.loss = 2.0; latency = 0.0; jitter = 0.0 };
        })

(* An empty host set is a caller bug, not a no-op to paper over: the
   complaint is pinned, and the failed call must not mark the layer
   touched (which would drag every later run off the pristine path). *)
let test_empty_host_set_rejected () =
  let eng = Engine.create () in
  let net : unit Simnet.Net.t = Simnet.Net.create eng () in
  let p = Simnet.Net.perturb net in
  let expect_msg what expected f =
    try
      f ();
      Alcotest.failf "%s: expected Invalid_argument" what
    with Invalid_argument msg -> check Alcotest.string what expected msg
  in
  let partition_msg =
    "Net.Perturb.partition: empty host set (both sides need at least one host)"
  in
  expect_msg "partition both empty" partition_msg (fun () -> Perturb.partition p [] []);
  expect_msg "partition left empty" partition_msg (fun () -> Perturb.partition p [] [ 2; 3 ]);
  expect_msg "partition right empty" partition_msg (fun () -> Perturb.partition p [ 0; 1 ] []);
  expect_msg "isolate empty" "Net.Perturb.isolate: empty host set (nothing to isolate)"
    (fun () -> Perturb.isolate p []);
  check_bool "rejected calls leave the layer untouched" false (Perturb.touched p)

(* Pair-level primitives: a cut or degradation lands on exactly the
   listed pairs, in both directions, and heals away. *)
let test_pair_primitives () =
  let eng = Engine.create () in
  let net : unit Simnet.Net.t = Simnet.Net.create eng () in
  let p = Simnet.Net.perturb net in
  Perturb.cut_pairs p [ (1, 0); (2, 3) ];
  check_bool "cut src->dst" true (Perturb.cut p ~src:0 ~dst:1);
  check_bool "cut dst->src" true (Perturb.cut p ~src:1 ~dst:0);
  check_bool "unsorted input normalized" true (Perturb.cut p ~src:3 ~dst:2);
  check_bool "unlisted pair open" false (Perturb.cut p ~src:0 ~dst:2);
  check_bool "touched" true (Perturb.touched p);
  let spec = { Perturb.loss = 0.25; latency = 0.002; jitter = 0.0 } in
  Perturb.degrade_pairs p ~pairs:[ (4, 5) ] spec;
  check_bool "pair spec applies both ways" true
    (Perturb.spec_for p ~src:4 ~dst:5 = spec && Perturb.spec_for p ~src:5 ~dst:4 = spec);
  check_bool "unlisted pair untouched" true (Perturb.spec_for p ~src:4 ~dst:6 = Perturb.zero);
  Perturb.heal p;
  check_bool "heal clears pair cuts" false (Perturb.cut p ~src:0 ~dst:1);
  check_bool "heal clears pair specs" true (Perturb.spec_for p ~src:4 ~dst:5 = Perturb.zero)

(* ------------------------------------------------------------------ *)
(* Run-level equivalence and determinism (small BT workload) *)

let run_bt ?net ~n_ranks ~seed () =
  let cfg = { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.net } in
  Harness.run_bt ~cfg ~klass:Workload.Bt_model.A ~n_ranks
    ~n_machines:(Harness.machines_for n_ranks) ~scenario:None ~seed ()

let counters r = Failmpi.Backend.Metrics.counters r.Failmpi.Run.metrics

let same_result a b =
  a.Failmpi.Run.outcome = b.Failmpi.Run.outcome
  && a.Failmpi.Run.injected_faults = b.Failmpi.Run.injected_faults
  && a.Failmpi.Run.checksums = b.Failmpi.Run.checksums
  && a.Failmpi.Run.checksum_ok = b.Failmpi.Run.checksum_ok
  && counters a = counters b

let loss_profile ?(loss = 0.05) () =
  {
    Perturb.default_profile with
    Perturb.base = { Perturb.loss; latency = 0.0; jitter = 0.0 };
  }

let test_perturb_off_identical () =
  (* An applied-but-all-zero profile must leave the pristine path byte
     for byte: same outcome and time, and no net counters at all. *)
  let plain = run_bt ~n_ranks:4 ~seed:1L () in
  let zeroed = run_bt ~net:Perturb.default_profile ~n_ranks:4 ~seed:1L () in
  check_bool "identical results" true (same_result plain zeroed);
  check_bool "completed" true
    (match plain.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false);
  check_bool "no net counters" true
    (List.for_all
       (fun (name, _) -> not (String.length name >= 4 && String.sub name 0 4 = "net_"))
       (counters plain))

let test_loss_deterministic () =
  let a = run_bt ~net:(loss_profile ()) ~n_ranks:4 ~seed:3L () in
  let b = run_bt ~net:(loss_profile ()) ~n_ranks:4 ~seed:3L () in
  check_bool "same seed, same run" true (same_result a b);
  check_bool "completed under loss" true
    (match a.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false);
  check_bool "checksums intact" true (a.Failmpi.Run.checksum_ok = Some true);
  check_bool "drops observed" true
    (Failmpi.Backend.Metrics.find a.Failmpi.Run.metrics "net_dropped" > Some 0);
  check_bool "retransmits observed" true
    (Failmpi.Backend.Metrics.find a.Failmpi.Run.metrics "net_retransmits" > Some 0)

let test_topology_attached_identical () =
  (* Declaring a topology arms component faults but must never perturb
     an unperturbed run: routing is only consulted when a fault
     resolves, so the observables stay byte-identical. *)
  let with_topology topology ~seed =
    let cfg = { (Mpivcl.Config.default ~n_ranks:4) with Mpivcl.Config.topology } in
    Harness.run_bt ~cfg ~klass:Workload.Bt_model.A ~n_ranks:4
      ~n_machines:(Harness.machines_for 4) ~scenario:None ~seed ()
  in
  let plain = run_bt ~n_ranks:4 ~seed:1L () in
  let flat = with_topology (Some Simtopo.Topo.Flat) ~seed:1L in
  let tree = with_topology (Some (Simtopo.Topo.Fat_tree { k = 4 })) ~seed:1L in
  check_bool "flat mesh identical" true (same_result plain flat);
  check_bool "fat tree identical" true (same_result plain tree)

let test_jobs_equivalence () =
  (* The seeded perturbation RNG lives in the run's own engine, so a
     parallel campaign is bit-identical to the sequential one. *)
  let cell =
    Harness.cell ~tag:"loss" ~reps:3 ~base_seed:11 (fun ~seed ->
        run_bt ~net:(loss_profile ()) ~n_ranks:4 ~seed ())
  in
  let agg jobs =
    match Harness.campaign ~jobs [ cell ] with
    | [ (_, results) ] -> Harness.aggregate ~label:"loss" results
    | _ -> Alcotest.fail "expected one cell"
  in
  check_bool "jobs 1 = jobs 4" true (agg 1 = agg 4)

(* ------------------------------------------------------------------ *)
(* Partition, heal, and the net-hung verdict (9-rank cluster) *)

let partition_profile ~heal_at =
  {
    Perturb.default_profile with
    Perturb.partition = Some ([ 0; 1 ], [ 2; 3 ]);
    heal_at;
  }

let test_partition_heal_completes () =
  (* Healed before connect retries exhaust (~20 s of backoff): the run
     rides the retransmissions to a correct completion. *)
  let r = run_bt ~net:(partition_profile ~heal_at:(Some 8.0)) ~n_ranks:9 ~seed:1L () in
  check_bool "completed" true
    (match r.Failmpi.Run.outcome with Failmpi.Run.Completed _ -> true | _ -> false);
  check_bool "checksums intact" true (r.Failmpi.Run.checksum_ok = Some true);
  check_bool "drops observed" true
    (Failmpi.Backend.Metrics.find r.Failmpi.Run.metrics "net_dropped" > Some 0)

let test_unhealed_partition_is_net_hung () =
  (* Never healed: the wedge is network-explained, so the §5 classifier
     must say net-hung, not buggy. *)
  let r = run_bt ~net:(partition_profile ~heal_at:None) ~n_ranks:9 ~seed:1L () in
  check_bool "net-hung" true (r.Failmpi.Run.outcome = Failmpi.Run.Net_hung)

(* ------------------------------------------------------------------ *)
(* FCI control plane: net actions and timer drain *)

let deploy ?config eng src =
  match Fail_lang.Compile.compile_source src with
  | Ok plan -> Fci.Runtime.create eng ?config plan
  | Error msg -> Alcotest.failf "compile failed: %s" msg

let test_fci_net_actions_and_drain () =
  let eng = Engine.create () in
  let net : unit Simnet.Net.t = Simnet.Net.create eng () in
  let p = Simnet.Net.perturb net in
  let rt =
    deploy eng
      {|
Daemon PLAN {
  node 1:
    time t = 1;
    timer -> degrade G1[1] loss = 100, goto 2;
  node 2:
    time t = 1;
    timer -> partition G1[0] G1[1], goto 3;
  node 3:
    time t = 2;
    timer -> heal, goto 4;
  node 4:
}
Daemon NODE {
  node 1:
}
P1 : PLAN on machine 9;
G1[2] : NODE on machines 0 .. 1;
|}
  in
  Fci.Runtime.set_fabric rt p;
  (* The heartbeat monitor keeps the engine busy while the fabric is
     perturbed, so run to a deadline rather than quiescence. *)
  check_bool "deadline" true (Engine.run ~until:30.0 eng = `Deadline);
  check_int "degrade and partition counted" 2 (Fci.Runtime.net_faults rt);
  check_bool "fabric touched" true (Perturb.touched p);
  Fci.Runtime.shutdown rt;
  check_bool "drained" true (Engine.run eng = `Quiescent);
  check_int "no pending events" 0 (Engine.pending eng)

let topo_kill_src =
  {|
Daemon PLAN {
  node 1:
    time t = 1;
    timer -> partition switch edge[0], goto 2;
  node 2:
}
Daemon NODE {
  node 1:
}
P1 : PLAN on machine 16;
G1[16] : NODE on machines 0 .. 15;
|}

let test_fci_switch_kill () =
  let eng = Engine.create () in
  let net : unit Simnet.Net.t = Simnet.Net.create eng () in
  let p = Simnet.Net.perturb net in
  let rt = deploy eng topo_kill_src in
  Fci.Runtime.set_fabric rt p;
  Fci.Runtime.set_topology rt
    (Simtopo.Topo.for_cluster (Simtopo.Topo.Fat_tree { k = 4 }) ~n_compute:16);
  check_bool "deadline" true (Engine.run ~until:10.0 eng = `Deadline);
  check_int "component fault counted" 1 (Fci.Runtime.net_faults rt);
  (* edge switch 0 takes rack 0 (hosts 0 and 1) off the fabric: every
     pair touching them is cut, everything else stays open *)
  check_bool "severed to remote" true (Perturb.cut p ~src:0 ~dst:5);
  check_bool "intra-rack cut" true (Perturb.cut p ~src:0 ~dst:1);
  check_bool "severed to service host" true (Perturb.cut p ~src:1 ~dst:16);
  check_bool "survivor pairs open" false (Perturb.cut p ~src:2 ~dst:5);
  Fci.Runtime.shutdown rt;
  check_bool "drained" true (Engine.run eng = `Quiescent)

let test_fci_topo_kill_without_topology_is_noop () =
  (* The same scenario on a run that declared no topology: a traced
     no-op, the fabric stays pristine. *)
  let eng = Engine.create () in
  let net : unit Simnet.Net.t = Simnet.Net.create eng () in
  let p = Simnet.Net.perturb net in
  let rt = deploy eng topo_kill_src in
  Fci.Runtime.set_fabric rt p;
  ignore (Engine.run ~until:10.0 eng);
  check_int "no fault counted" 0 (Fci.Runtime.net_faults rt);
  check_bool "fabric untouched" false (Perturb.touched p);
  Fci.Runtime.shutdown rt;
  check_bool "drained" true (Engine.run eng = `Quiescent)

let test_shutdown_idempotent () =
  let eng = Engine.create () in
  let rt = deploy eng "Daemon D { node 1: } P1 : D on machine 0;" in
  ignore (Engine.run eng);
  Fci.Runtime.shutdown rt;
  Fci.Runtime.shutdown rt;
  check_int "no pending events" 0 (Engine.pending eng)

let () =
  Alcotest.run "netfault"
    [
      ( "perturb",
        [
          Alcotest.test_case "backoff ladder" `Quick test_backoff;
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
          Alcotest.test_case "profile validation" `Quick test_profile_validation;
          Alcotest.test_case "empty host set rejected" `Quick test_empty_host_set_rejected;
          Alcotest.test_case "pair primitives" `Quick test_pair_primitives;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "perturb off is pristine" `Quick test_perturb_off_identical;
          Alcotest.test_case "topology attached is pristine" `Quick
            test_topology_attached_identical;
          Alcotest.test_case "fixed seed under loss" `Quick test_loss_deterministic;
          Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs_equivalence;
        ] );
      ( "partition",
        [
          Alcotest.test_case "heal before exhaustion completes" `Quick
            test_partition_heal_completes;
          Alcotest.test_case "unhealed partition is net-hung" `Quick
            test_unhealed_partition_is_net_hung;
        ] );
      ( "fci",
        [
          Alcotest.test_case "net actions and timer drain" `Quick
            test_fci_net_actions_and_drain;
          Alcotest.test_case "switch kill cuts the routed pairs" `Quick test_fci_switch_kill;
          Alcotest.test_case "topo kill without topology is a no-op" `Quick
            test_fci_topo_kill_without_topology_is_noop;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        ] );
    ]
