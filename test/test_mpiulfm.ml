(* Tests for the ULFM-style shrink-and-continue backend (lib/mpiulfm):

   - shrinkc: the pure shrink calculus — quorum sizes, deterministic
     communicator rebuild (same survivor set => identical decision, in
     any input order), spare promotion / orphan adoption bookkeeping,
     and the recursive-doubling sync plan (symmetric pairings for every
     membership size);
   - golden: the fault-free path completes plain (never degraded) with
     the same checksums as every other backend;
   - spares: a kill with a warm-spare pool completes degraded with the
     spare promoted and the end-to-end checksum preserved;
   - agreement: a fixed-seed sweep under kills, a partition and message
     loss never produces two different decisions for one epoch (the
     dispatcher's split-brain cross-check stays silent) and never a
     wrong answer;
   - determinism: a faulty run is a pure function of its seed, byte
     identical whether replicated on 1 or 4 domains. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Shrinkc: pure shrink calculus *)

let test_quorum () =
  check_int "1 member" 1 (Mpiulfm.Shrinkc.quorum [ 0 ]);
  check_int "2 members" 2 (Mpiulfm.Shrinkc.quorum [ 0; 1 ]);
  check_int "9 members" 5 (Mpiulfm.Shrinkc.quorum (List.init 9 Fun.id));
  check_int "11 members" 6 (Mpiulfm.Shrinkc.quorum (List.init 11 Fun.id))

let decision_eq = Alcotest.testable
    (fun ppf (d : Mpiulfm.Shrinkc.decision) ->
      Format.fprintf ppf "epoch %d members [%s] assign [%s] restart %d"
        d.Mpiulfm.Shrinkc.d_epoch
        (String.concat "," (List.map string_of_int d.Mpiulfm.Shrinkc.d_members))
        (String.concat ","
           (List.map
              (fun (r, d) -> Printf.sprintf "%d->%d" r d)
              d.Mpiulfm.Shrinkc.d_assign))
        d.Mpiulfm.Shrinkc.d_restart)
    ( = )

(* Same survivor set => byte-identical communicator, regardless of the
   order the survivors were enumerated in. *)
let test_next_deterministic () =
  let prev_assign = List.init 9 (fun r -> (r, r)) in
  let avail = List.map (fun d -> (d, [])) (List.init 11 Fun.id) in
  let members = [ 0; 2; 3; 4; 6; 8; 9; 10 ] in
  let d1 =
    Mpiulfm.Shrinkc.next ~n_ranks:9 ~prev_assign ~members ~avail ~epoch:1
  in
  let d2 =
    Mpiulfm.Shrinkc.next ~n_ranks:9 ~prev_assign ~members ~avail ~epoch:1
  in
  check decision_eq "identical on identical input" d1 d2;
  let shuffled = [ 10; 4; 0; 8; 3; 9; 2; 6 ] in
  let d3 =
    Mpiulfm.Shrinkc.next ~n_ranks:9 ~prev_assign ~members:shuffled ~avail ~epoch:1
  in
  check decision_eq "member order is irrelevant" d1 d3

let test_next_promotion_adoption () =
  (* 6 ranks, daemons 0..5 computing, 6..7 warm spares; ranks 1 and 4
     lost. Spares 6 and 7 take the orphans in rank order; nobody is
     doubled up. *)
  let prev_assign = List.init 6 (fun r -> (r, r)) in
  let members = [ 0; 2; 3; 5; 6; 7 ] in
  let avail = List.map (fun d -> (d, [])) members in
  let d = Mpiulfm.Shrinkc.next ~n_ranks:6 ~prev_assign ~members ~avail ~epoch:1 in
  check_int "promoted" 2 d.Mpiulfm.Shrinkc.d_promoted;
  check_int "adopted" 0 d.Mpiulfm.Shrinkc.d_adopted;
  check_int "survivors" 6 (Mpiulfm.Shrinkc.survivors d);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "assignment" [ (0, 0); (1, 6); (2, 2); (3, 3); (4, 7); (5, 5) ]
    d.Mpiulfm.Shrinkc.d_assign;
  (* No spares left: the same losses are adopted round-robin instead. *)
  let members = [ 0; 2; 3; 5 ] in
  let avail = List.map (fun dm -> (dm, [])) members in
  let d = Mpiulfm.Shrinkc.next ~n_ranks:6 ~prev_assign ~members ~avail ~epoch:2 in
  check_int "promoted" 0 d.Mpiulfm.Shrinkc.d_promoted;
  check_int "adopted" 2 d.Mpiulfm.Shrinkc.d_adopted;
  check_int "survivors" 4 (Mpiulfm.Shrinkc.survivors d);
  check_int "all ranks assigned" 6 (List.length d.Mpiulfm.Shrinkc.d_assign)

let test_next_restart_point () =
  (* Restart = the highest iteration available (locally or via a donor)
     for every rank; donors are listed only for assignees missing it. *)
  let prev_assign = [ (0, 0); (1, 1); (2, 2) ] in
  let members = [ 0; 2; 3 ] in
  let avail =
    [
      (0, [ (0, [ 10; 5 ]); (1, [ 10 ]) ]);
      (2, [ (2, [ 10; 5 ]) ]);
      (3, [ (1, [ 5 ]) ]);
    ]
  in
  let d = Mpiulfm.Shrinkc.next ~n_ranks:3 ~prev_assign ~members ~avail ~epoch:1 in
  (* iteration 10 is missing for rank 1 everywhere? no: daemon 0 holds
     rank 1 at 10, and rank 1's orphan is promoted onto spare 3 — donor
     needed. Ranks 0 and 2 restart from their own local snapshots. *)
  check_int "restart" 10 d.Mpiulfm.Shrinkc.d_restart;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "donors" [ (1, 0) ] d.Mpiulfm.Shrinkc.d_donors

let test_sync_plan_shapes () =
  check_bool "solo" true (Mpiulfm.Shrinkc.sync_plan ~members:[ 4 ] ~me:4 = Mpiulfm.Shrinkc.Solo);
  (* Every membership size 2..9: each member gets a plan; Edge partners
     point at a Core that points back; Core round pairings are
     symmetric (my partner at round j names me at round j). *)
  for k = 2 to 9 do
    let members = List.init k (fun i -> (3 * i) + 1) in
    let plan_of m = Mpiulfm.Shrinkc.sync_plan ~members ~me:m in
    List.iter
      (fun m ->
        match plan_of m with
        | Mpiulfm.Shrinkc.Solo -> Alcotest.failf "k=%d: member %d got Solo" k m
        | Mpiulfm.Shrinkc.Edge { partner } -> (
            match plan_of partner with
            | Mpiulfm.Shrinkc.Core { edge = Some e; _ } ->
                check_int (Printf.sprintf "k=%d edge symmetry" k) m e
            | _ -> Alcotest.failf "k=%d: edge %d's partner %d is not its core" k m partner)
        | Mpiulfm.Shrinkc.Core { edge; rounds } ->
            (match edge with
            | Some e -> (
                match plan_of e with
                | Mpiulfm.Shrinkc.Edge { partner } ->
                    check_int (Printf.sprintf "k=%d core edge symmetry" k) m partner
                | _ -> Alcotest.failf "k=%d: core %d's edge %d is not an edge" k m e)
            | None -> ());
            Array.iteri
              (fun j p ->
                match plan_of p with
                | Mpiulfm.Shrinkc.Core { rounds = pr; _ } ->
                    check_int (Printf.sprintf "k=%d round %d symmetry" k j) m pr.(j)
                | _ -> Alcotest.failf "k=%d: round partner %d is not core" k p)
              rounds)
      members
  done

(* ------------------------------------------------------------------ *)
(* End-to-end runs (stencil workload, 4 ranks) *)

let small_params =
  { Workload.Stencil.iterations = 60; compute_time = 0.5; msg_bytes = 5_000; jitter = 0.0 }

let n_ranks = 4

let reference = Workload.Stencil.reference_checksum small_params ~n_ranks

let spec ?(spares = 0) ?net ~scenario () =
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.protocol = Mpivcl.Config.Ulfm { spares };
      wave_interval = 10.0;
      term_straggler_prob = 0.0;
      net;
    }
  in
  let app = Workload.Stencil.app small_params ~n_ranks in
  {
    (Failmpi.Run.default_spec ~app ~cfg ~n_compute:8 ~state_bytes:1_000_000) with
    Failmpi.Run.scenario;
    timeout = 400.0;
  }

let execute ?spares ?net ~scenario seed =
  Failmpi.Run.execute ~expected_checksum:reference
    { (spec ?spares ?net ~scenario ()) with Failmpi.Run.seed }

(* One kill at t=20: enough to shrink, deterministic in shape. *)
let one_kill =
  Fail_lang.Codegen.Scenario.source ~n_machines:8
    [
      {
        Fail_lang.Codegen.Scenario.machine = 1;
        anchor = Fail_lang.Codegen.Scenario.After 20;
        kind = Fail_lang.Codegen.Scenario.Kill;
      };
    ]

(* Two staggered kills, then a partition during the agreement they
   triggered, under 2% message loss — the adversarial sweep scenario. *)
let storm =
  Fail_lang.Paper_scenarios.shrink_storm ~n_machines:8 ~targets:[ 1; 3 ] ~start:20
    ~step:3 ~victim:2 ~lag:2

let lossy =
  {
    Simnet.Net.Perturb.default_profile with
    Simnet.Net.Perturb.base =
      { Simnet.Net.Perturb.loss = 0.02; latency = 0.0; jitter = 0.0 };
  }

let test_fault_free_golden () =
  let r = execute ~scenario:None 1L in
  (match r.Failmpi.Run.outcome with
  | Failmpi.Run.Completed _ -> ()
  | o -> Alcotest.failf "expected plain completion, got %s" (Failmpi.Run.outcome_name o));
  check_bool "checksums match every backend's fault-free reference" true
    (r.Failmpi.Run.checksum_ok = Some true);
  check_int "never shrank" 0 (Failmpi.Run.recoveries r)

let test_spare_promotion_preserves_checksum () =
  let r = execute ~spares:2 ~scenario:(Some one_kill) 1L in
  (match r.Failmpi.Run.outcome with
  | Failmpi.Run.Degraded { survivors; _ } ->
      (* 3 surviving computers plus the promoted spare: full width. *)
      check_int "survivors" 4 survivors
  | o -> Alcotest.failf "expected degraded, got %s" (Failmpi.Run.outcome_name o));
  check_bool "spare promoted" true
    (Failmpi.Backend.Metrics.find r.Failmpi.Run.metrics "spares_promoted" = Some 1);
  check_bool "checksum preserved end to end" true (r.Failmpi.Run.checksum_ok = Some true)

(* Fixed-seed sweep under kills + partition + loss: the agreement must
   never decide one epoch two different ways (the dispatcher's
   split-brain cross-check would classify the run buggy / net-hung and
   the checksums would diverge) and a finished run is never wrong. *)
let test_agreement_never_splits () =
  List.iter
    (fun seed ->
      let r = execute ~spares:2 ~net:lossy ~scenario:(Some storm) seed in
      (match r.Failmpi.Run.outcome with
      | Failmpi.Run.Completed _ | Failmpi.Run.Degraded _ ->
          check_bool
            (Printf.sprintf "seed %Ld: finished run has the right answer" seed)
            true
            (r.Failmpi.Run.checksum_ok = Some true)
      | Failmpi.Run.Aborted _ -> ()
      | Failmpi.Run.Ckpt_lost | Failmpi.Run.Non_terminating | Failmpi.Run.Buggy
      | Failmpi.Run.Net_hung ->
          Alcotest.failf "seed %Ld: agreement wedged (%s)" seed
            (Failmpi.Run.outcome_name r.Failmpi.Run.outcome));
      check_bool
        (Printf.sprintf "seed %Ld: no split-brain trace" seed)
        false
        (List.exists
           (fun (_, event) -> event = "split-brain")
           (Failmpi.Run.trace_events r)))
    [ 1L; 2L; 3L; 4L; 5L; 6L ]

(* A faulty shrink run is a pure function of its seed: replicating the
   same seeds over 1 and 4 domains yields byte-identical outcomes,
   shrink counters and checksums. *)
let test_jobs_deterministic () =
  let fingerprint r =
    Format.asprintf "%s|%d|%a|%b"
      (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
      r.Failmpi.Run.injected_faults
      (Format.pp_print_list (fun ppf (n, v) -> Format.fprintf ppf "%s=%d;" n v))
      (Failmpi.Backend.Metrics.counters r.Failmpi.Run.metrics)
      (r.Failmpi.Run.checksum_ok = Some true)
    ^ String.concat ","
        (List.map
           (fun (rk, v) -> Printf.sprintf "%d:%d" rk v)
           r.Failmpi.Run.checksums)
    ^
    match r.Failmpi.Run.outcome with
    | Failmpi.Run.Completed t | Failmpi.Run.Degraded { at = t; _ } ->
        Printf.sprintf "@%.9f" t
    | _ -> ""
  in
  let replicate jobs =
    Experiments.Harness.replicate ~jobs ~reps:3 ~base_seed:1 (fun ~seed ->
        execute ~spares:1 ~scenario:(Some one_kill) seed)
    |> List.map fingerprint
  in
  check (Alcotest.list Alcotest.string) "jobs 1 = jobs 4" (replicate 1) (replicate 4)

let () =
  Alcotest.run "mpiulfm"
    [
      ( "shrinkc",
        [
          Alcotest.test_case "quorum" `Quick test_quorum;
          Alcotest.test_case "shrink is deterministic" `Quick test_next_deterministic;
          Alcotest.test_case "promotion and adoption" `Quick test_next_promotion_adoption;
          Alcotest.test_case "restart point and donors" `Quick test_next_restart_point;
          Alcotest.test_case "sync plan symmetry" `Quick test_sync_plan_shapes;
        ] );
      ( "runs",
        [
          Alcotest.test_case "fault-free golden" `Quick test_fault_free_golden;
          Alcotest.test_case "spare promotion keeps checksum" `Quick
            test_spare_promotion_preserves_checksum;
          Alcotest.test_case "agreement never splits" `Quick test_agreement_never_splits;
          Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs_deterministic;
        ] );
    ]
