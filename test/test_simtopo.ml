(* Tests for the topology module: closed-form fat-tree counts, routing
   invariants, component blast radii and the spec string round-trip.
   Everything here is pure combinatorics, so the checks are exact. *)

open Simtopo

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

let pairs = Alcotest.(list (pair int int))

let fat_tree k = Topo.build (Topo.Fat_tree { k }) ~n_hosts:0

(* ------------------------------------------------------------------ *)
(* Builders *)

(* Host/switch/link counts must match the closed-form k-ary formulas. *)
let test_fat_tree_counts () =
  List.iter
    (fun k ->
      let t = fat_tree k in
      check_int (Printf.sprintf "k=%d hosts" k) (k * k * k / 4) (Topo.hosts t);
      check_int (Printf.sprintf "k=%d pods" k) k (Topo.pod_count t);
      check_int (Printf.sprintf "k=%d racks" k) (k * k / 2) (Topo.rack_count t);
      check_int (Printf.sprintf "k=%d edge" k) (k * k / 2) (Topo.switch_count t Topo.Edge);
      check_int (Printf.sprintf "k=%d agg" k) (k * k / 2) (Topo.switch_count t Topo.Agg);
      check_int (Printf.sprintf "k=%d core" k) (k * k / 4) (Topo.switch_count t Topo.Core);
      check_int
        (Printf.sprintf "k=%d switches" k)
        ((k * k) + (k * k / 4))
        (Topo.switches t);
      check_int (Printf.sprintf "k=%d links" k) (3 * k * k * k / 4) (Topo.links t))
    [ 2; 4; 6; 8 ]

let test_validate () =
  (match Topo.validate (Topo.Fat_tree { k = 3 }) with
  | Error msg -> check_string "odd arity" "fat-tree arity must be even and >= 2 (got 3)" msg
  | Ok () -> Alcotest.fail "odd arity accepted");
  (match Topo.validate (Topo.Torus2d { x = 0; y = 4 }) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero torus dimension accepted");
  check_bool "flat ok" true (Topo.validate Topo.Flat = Ok ());
  check_bool "even arity ok" true (Topo.validate (Topo.Fat_tree { k = 4 }) = Ok ())

let test_for_cluster () =
  (* The fabric must seat every compute host; service hosts beyond the
     pool ride the management network and need no seat. *)
  let t = Topo.for_cluster (Topo.Fat_tree { k = 4 }) ~n_compute:10 in
  check_int "fat-tree:4 seats 16" 16 (Topo.hosts t);
  match Topo.for_cluster (Topo.Fat_tree { k = 2 }) ~n_compute:10 with
  | exception Invalid_argument msg ->
      check_string "exact complaint"
        "Simtopo.for_cluster: topology fat-tree:2 provides 2 hosts but the deployment \
         needs 10 compute hosts"
        msg
  | _ -> Alcotest.fail "undersized topology accepted"

let test_spec_strings () =
  List.iter
    (fun spec ->
      match Topo.spec_of_string (Topo.spec_to_string spec) with
      | Ok got -> check_bool (Topo.spec_to_string spec) true (got = spec)
      | Error e -> Alcotest.failf "%s: %s" (Topo.spec_to_string spec) e)
    [
      Topo.Flat;
      Topo.Fat_tree { k = 4 };
      Topo.Torus2d { x = 3; y = 5 };
      Topo.Torus3d { x = 2; y = 3; z = 4 };
    ];
  match Topo.spec_of_string "hypercube:3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown topology accepted"

(* ------------------------------------------------------------------ *)
(* Routing *)

(* The route is a pure symmetric function of the pair: same switches in
   both directions, stable across repeated calls (the determinism any
   --jobs fan-out relies on), and inter-pod exactly when the pods
   differ. *)
let test_route_invariants () =
  let t = fat_tree 4 in
  let n = Topo.hosts t in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let r1 = Topo.route t ~src:a ~dst:b in
      check_bool "repeated call identical" true (r1 = Topo.route t ~src:a ~dst:b);
      (* the reverse route walks the same switches in travel order *)
      check_bool "symmetric" true (List.rev r1 = Topo.route t ~src:b ~dst:a);
      if a = b then check_bool "self route empty" true (r1 = [])
      else begin
        let pod h = Option.get (Topo.pod_of_host t h) in
        let rack h = Option.get (Topo.rack_of_host t h) in
        let crosses_core = List.exists (fun (tier, _) -> tier = Topo.Core) r1 in
        check_bool "core iff inter-pod" true (crosses_core = (pod a <> pod b));
        check_bool "starts at src edge" true
          (match r1 with (Topo.Edge, e) :: _ -> e = rack a | _ -> false);
        (* switch indices stay inside the per-tier ranges *)
        List.iter
          (fun (tier, i) ->
            check_bool "index in range" true (i >= 0 && i < Topo.switch_count t tier))
          r1
      end
    done
  done

let test_route_shapes () =
  let t = fat_tree 4 in
  (* same rack: the shared edge switch only *)
  check_bool "intra-rack" true (Topo.route t ~src:0 ~dst:1 = [ (Topo.Edge, 0) ]);
  (* same pod, different rack: edge-agg-edge, no core *)
  (match Topo.route t ~src:0 ~dst:2 with
  | [ (Topo.Edge, 0); (Topo.Agg, _); (Topo.Edge, 1) ] -> ()
  | _ -> Alcotest.fail "intra-pod route shape");
  (* different pods: edge-agg-core-agg-edge *)
  match Topo.route t ~src:0 ~dst:4 with
  | [ (Topo.Edge, 0); (Topo.Agg, _); (Topo.Core, _); (Topo.Agg, _); (Topo.Edge, 2) ] -> ()
  | _ -> Alcotest.fail "inter-pod route shape"

let test_torus_path_symmetry () =
  let t2 = Topo.build (Topo.Torus2d { x = 4; y = 5 }) ~n_hosts:0 in
  let t3 = Topo.build (Topo.Torus3d { x = 3; y = 4; z = 2 }) ~n_hosts:0 in
  List.iter
    (fun t ->
      let n = Topo.hosts t in
      for a = 0 to n - 1 do
        check_int "self distance" 0 (Topo.path_len t ~src:a ~dst:a);
        for b = 0 to n - 1 do
          check_int "symmetric distance" (Topo.path_len t ~src:a ~dst:b)
            (Topo.path_len t ~src:b ~dst:a);
          if a <> b then
            check_bool "positive distance" true (Topo.path_len t ~src:a ~dst:b > 0)
        done
      done)
    [ t2; t3 ];
  (* wrap-around: the last host of a 4-wide ring is 1 hop from the
     first, the opposite one 2 hops — never the naive 3 *)
  check_int "wrap adjacent" 1 (Topo.path_len t2 ~src:0 ~dst:3);
  check_int "wrap opposite" 2 (Topo.path_len t2 ~src:0 ~dst:2)

(* ------------------------------------------------------------------ *)
(* Component blast radii *)

let all_pairs n pred =
  let acc = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if pred a b then acc := (a, b) :: !acc
    done
  done;
  List.rev !acc

(* Killing a switch must cut exactly the pairs whose route crosses it —
   cross-checked against the closed-form predicates, not the router. *)
let test_switch_cut_pairs () =
  let t = fat_tree 4 in
  let n = Topo.hosts t in
  let rack h = h / 2 and pod h = h / 4 in
  (* edge switch r: every pair touching rack r (intra-rack included) *)
  check pairs "edge 3"
    (all_pairs n (fun a b -> rack a = 3 || rack b = 3))
    (Topo.cut_pairs t (Topo.Switch (Topo.Edge, 3)));
  (* agg switch at position j of pod p: intra-pod pairs hashed to j,
     plus pod-p-crossing pairs whose core group is j *)
  let agg_cut p j a b =
    if pod a = p && pod b = p then rack a <> rack b && (a + b) mod 2 = j
    else if pod a = p || pod b = p then (a + b) mod 4 / 2 = j
    else false
  in
  check pairs "agg 0" (all_pairs n (agg_cut 0 0)) (Topo.cut_pairs t (Topo.Switch (Topo.Agg, 0)));
  check pairs "agg 5" (all_pairs n (agg_cut 2 1)) (Topo.cut_pairs t (Topo.Switch (Topo.Agg, 5)));
  (* core switch c: inter-pod pairs with (a + b) mod core-count = c *)
  List.iter
    (fun c ->
      check pairs
        (Printf.sprintf "core %d" c)
        (all_pairs n (fun a b -> pod a <> pod b && (a + b) mod 4 = c))
        (Topo.cut_pairs t (Topo.Switch (Topo.Core, c))))
    [ 0; 1; 2; 3 ];
  (* every inter-pod pair is cut by exactly one core switch *)
  let cut_by_core =
    List.concat_map (fun c -> Topo.cut_pairs t (Topo.Switch (Topo.Core, c))) [ 0; 1; 2; 3 ]
  in
  check pairs "core switches partition the inter-pod pairs"
    (all_pairs n (fun a b -> pod a <> pod b))
    (List.sort compare cut_by_core)

let test_enclosure_semantics () =
  let t = fat_tree 4 in
  let n = Topo.hosts t in
  (* hosts_of / severed_hosts *)
  check (Alcotest.list Alcotest.int) "rack 2 members" [ 4; 5 ]
    (Topo.hosts_of t (Topo.Rack 2));
  check (Alcotest.list Alcotest.int) "pod 1 members" [ 4; 5; 6; 7 ]
    (Topo.hosts_of t (Topo.Pod 1));
  check (Alcotest.list Alcotest.int) "edge switch severs its rack" [ 4; 5 ]
    (Topo.severed_hosts t (Topo.Switch (Topo.Edge, 2)));
  check (Alcotest.list Alcotest.int) "agg severs nobody" []
    (Topo.severed_hosts t (Topo.Switch (Topo.Agg, 0)));
  check (Alcotest.list Alcotest.int) "core severs nobody" []
    (Topo.severed_hosts t (Topo.Switch (Topo.Core, 0)));
  (* an enclosure failure cuts every pair touching a member *)
  check pairs "pod 1 cut"
    (all_pairs n (fun a b -> a / 4 = 1 || b / 4 = 1))
    (Topo.cut_pairs t (Topo.Pod 1));
  (* intra_pairs: the (m choose 2) internal links of the enclosure *)
  check pairs "pod 1 intra"
    [ (4, 5); (4, 6); (4, 7); (5, 6); (5, 7); (6, 7) ]
    (List.sort compare (Topo.intra_pairs t (Topo.Pod 1)));
  check pairs "rack 0 intra" [ (0, 1) ] (Topo.intra_pairs t (Topo.Rack 0))

let test_check_component () =
  let t = fat_tree 4 in
  check_bool "valid switch" true (Topo.check_component t (Topo.Switch (Topo.Agg, 7)) = Ok ());
  (match Topo.check_component t (Topo.Switch (Topo.Agg, 8)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range agg accepted");
  (match Topo.check_component t (Topo.Pod 4) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range pod accepted");
  let flat = Topo.build Topo.Flat ~n_hosts:8 in
  (match Topo.check_component flat (Topo.Switch (Topo.Edge, 0)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "switch on a flat mesh accepted");
  check pairs "invalid component cuts nothing" [] (Topo.cut_pairs t (Topo.Pod 9));
  check pairs "flat mesh cuts nothing" [] (Topo.cut_pairs flat (Topo.Switch (Topo.Edge, 0)))

let () =
  Alcotest.run "simtopo"
    [
      ( "builders",
        [
          Alcotest.test_case "fat-tree closed forms" `Quick test_fat_tree_counts;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "for_cluster" `Quick test_for_cluster;
          Alcotest.test_case "spec strings" `Quick test_spec_strings;
        ] );
      ( "routing",
        [
          Alcotest.test_case "route invariants" `Quick test_route_invariants;
          Alcotest.test_case "route shapes" `Quick test_route_shapes;
          Alcotest.test_case "torus path symmetry" `Quick test_torus_path_symmetry;
        ] );
      ( "components",
        [
          Alcotest.test_case "switch cut pairs" `Quick test_switch_cut_pairs;
          Alcotest.test_case "enclosure semantics" `Quick test_enclosure_semantics;
          Alcotest.test_case "check_component" `Quick test_check_component;
        ] );
    ]
