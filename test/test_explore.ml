(* Tests for lib/explore: plan <-> scenario conversion, the ddmin /
   coarsen shrinker on synthetic oracles, and the end-to-end acceptance
   demo — the seeded vcl dispatcher race must be rediscovered by the
   search, shrunk to a two-fault witness that replays through
   Failmpi.Run with the same classification, and disappear entirely
   when the defect is compiled out. Reports must be byte-identical at
   jobs 1 and jobs 4. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

module Plan = Explore.Plan
module Shrink = Explore.Shrink

let plan_testable =
  Alcotest.testable
    (fun ppf p -> Format.fprintf ppf "%d machines: %s" p.Plan.n_machines (Plan.key p))
    Plan.equal

let vname = Explore.verdict_name

let parse_back ?params src =
  match Plan.of_scenario ?params src with
  | Ok p -> p
  | Error e -> Alcotest.failf "of_scenario failed: %s" e

(* ------------------------------------------------------------------ *)
(* Plan <-> scenario round-trips *)

let sample_plans =
  [
    { Plan.n_machines = 8; faults = [ { Plan.machine = 3; anchor = Plan.After 12; kind = Plan.Kill } ] };
    {
      Plan.n_machines = 8;
      faults = [ { Plan.machine = 0; anchor = Plan.After 5; kind = Plan.Freeze { thaw = 8 } } ];
    };
    {
      Plan.n_machines = 10;
      faults =
        [
          { Plan.machine = 2; anchor = Plan.After 20; kind = Plan.Kill };
          { Plan.machine = 7; anchor = Plan.On_reload { nth = 5; delay = 2 }; kind = Plan.Kill };
        ];
    };
    {
      Plan.n_machines = 13;
      faults =
        [
          { Plan.machine = 1; anchor = Plan.After 25; kind = Plan.Kill };
          { Plan.machine = 4; anchor = Plan.After 3; kind = Plan.Freeze { thaw = 6 } };
          { Plan.machine = 2; anchor = Plan.On_reload { nth = 10; delay = 1 }; kind = Plan.Kill };
        ];
    };
  ]

let test_plan_roundtrip () =
  List.iter
    (fun p -> check plan_testable (Plan.key p) p (parse_back (Plan.to_scenario p)))
    sample_plans

let test_plan_key () =
  check_str "key shape" "kill@2+20;kill@7@reload5+2" (Plan.key (List.nth sample_plans 2));
  check_str "freeze key" "freeze8@0+5" (Plan.key (List.nth sample_plans 1))

let read_scenario name =
  let path = Filename.concat "../scenarios" name in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The shipped double_strike.fail, its registered paper-scenario twin
   and a hand-built plan must all denote the same two-fault strike. *)
let test_double_strike_file () =
  let expected =
    {
      Plan.n_machines = 13;
      faults =
        [
          { Plan.machine = 1; anchor = Plan.After 25; kind = Plan.Kill };
          { Plan.machine = 2; anchor = Plan.On_reload { nth = 10; delay = 1 }; kind = Plan.Kill };
        ];
    }
  in
  let from_file =
    parse_back
      ~params:[ ("START", 25); ("GAP", 1); ("FIRST", 1); ("SECOND", 2); ("NTH", 10) ]
      (read_scenario "double_strike.fail")
  in
  check plan_testable "double_strike.fail" expected from_file;
  let registered =
    match List.assoc_opt "double-strike" Fail_lang.Paper_scenarios.all with
    | Some src -> src
    | None -> Alcotest.fail "double-strike not registered in Paper_scenarios.all"
  in
  check plan_testable "paper scenario" expected (parse_back registered);
  check plan_testable "generated source" expected (parse_back (Plan.to_scenario expected))

(* Service faults: key shape, key round-trip and scenario round-trip.
   The ckpt replica index lives in the fault's [machine] and is
   mirrored into the selector on parse-back. *)
let test_service_plan_roundtrip () =
  let p =
    {
      Plan.n_machines = 13;
      faults =
        [
          {
            Plan.machine = 0;
            anchor = Plan.After 32;
            kind = Plan.Service_kill { service = Plan.S_ckpt 0 };
          };
          {
            Plan.machine = 2;
            anchor = Plan.After 1;
            kind = Plan.Service_freeze { service = Plan.S_ckpt 2; thaw = 20 };
          };
          {
            Plan.machine = 0;
            anchor = Plan.After 5;
            kind = Plan.Service_kill { service = Plan.S_sched };
          };
          { Plan.machine = 3; anchor = Plan.After 6; kind = Plan.Kill };
        ];
    }
  in
  check_str "service keys" "skckpt@0+32;sfckpt20@2+1;sksched@0+5;kill@3+6" (Plan.key p);
  (match Plan.of_key ~n_machines:13 (Plan.key p) with
  | Ok q -> check plan_testable "key round-trip" p q
  | Error e -> Alcotest.failf "of_key failed: %s" e);
  check plan_testable "scenario round-trip" p (parse_back (Plan.to_scenario p))

(* [align_service] restores the codegen invariant when machine and kind
   were drawn independently (the sampler and corpus mutator do this). *)
let test_align_service () =
  let f =
    {
      Plan.machine = 2;
      anchor = Plan.After 10;
      kind = Plan.Service_kill { service = Plan.S_ckpt 0 };
    }
  in
  (match (Plan.align_service f).Plan.kind with
  | Plan.Service_kill { service = Plan.S_ckpt 2 } -> ()
  | _ -> Alcotest.fail "ckpt selector not aligned to the fault's machine");
  let g =
    {
      Plan.machine = 5;
      anchor = Plan.After 10;
      kind = Plan.Service_freeze { service = Plan.S_sched; thaw = 3 };
    }
  in
  check_int "sched machine pinned to 0" 0 (Plan.align_service g).Plan.machine;
  let h = { Plan.machine = 4; anchor = Plan.After 7; kind = Plan.Kill } in
  check plan_testable "identity on process faults"
    { Plan.n_machines = 8; faults = [ h ] }
    { Plan.n_machines = 8; faults = [ Plan.align_service h ] }

(* The shipped ckpt_sniper.fail, its registered paper-scenario twin and
   a hand-built plan must all denote the same mid-commit strike. *)
let test_ckpt_sniper_file () =
  let expected =
    {
      Plan.n_machines = 13;
      faults =
        [
          {
            Plan.machine = 0;
            anchor = Plan.After 32;
            kind = Plan.Service_kill { service = Plan.S_ckpt 0 };
          };
          { Plan.machine = 3; anchor = Plan.After 6; kind = Plan.Kill };
        ];
    }
  in
  let from_file =
    parse_back
      ~params:[ ("SERVER", 0); ("START", 32); ("RANK", 3); ("GAP", 6) ]
      (read_scenario "ckpt_sniper.fail")
  in
  check plan_testable "ckpt_sniper.fail" expected from_file;
  let registered =
    match List.assoc_opt "ckpt-sniper" Fail_lang.Paper_scenarios.all with
    | Some src -> src
    | None -> Alcotest.fail "ckpt-sniper not registered in Paper_scenarios.all"
  in
  check plan_testable "paper scenario" expected (parse_back registered);
  check plan_testable "generated source" expected (parse_back (Plan.to_scenario expected))

(* ------------------------------------------------------------------ *)
(* Shrinker on synthetic oracles *)

let guarded test xs =
  if xs = [] then Alcotest.fail "oracle probed the empty list";
  test xs

let test_ddmin_singleton () =
  let minimal, probes = Shrink.ddmin ~test:(guarded (List.mem 5)) (List.init 8 Fun.id) in
  check (Alcotest.list Alcotest.int) "single culprit" [ 5 ] minimal;
  check_bool "probed" true (probes > 0)

let test_ddmin_pair () =
  let test = guarded (fun l -> List.mem 2 l && List.mem 7 l) in
  let minimal, _ = Shrink.ddmin ~test (List.init 10 Fun.id) in
  check (Alcotest.list Alcotest.int) "two culprits, order kept" [ 2; 7 ] minimal

let test_ddmin_irreducible () =
  (* Nothing can be removed: ddmin must hand the input back. *)
  let xs = [ 10; 20; 30; 40 ] in
  let minimal, _ = Shrink.ddmin ~test:(guarded (fun l -> List.length l = 4)) xs in
  check (Alcotest.list Alcotest.int) "all four needed" xs minimal

let delays p = List.map (fun f -> match f.Plan.anchor with Plan.After d -> d | Plan.On_reload { delay; _ } -> delay) p.Plan.faults

let test_coarsen () =
  let p =
    {
      Plan.n_machines = 8;
      faults =
        [
          { Plan.machine = 0; anchor = Plan.After 17; kind = Plan.Kill };
          { Plan.machine = 1; anchor = Plan.On_reload { nth = 3; delay = 7 }; kind = Plan.Kill };
        ];
    }
  in
  (* Reproduces iff the first strike lands at >= 10 s and the second
     >= 5 s after the reload: 17 must snap to 15 (grid 15), 7 to 5. *)
  let test q = match delays q with [ a; b ] -> a >= 10 && b >= 5 | _ -> false in
  let coarse, probes = Shrink.coarsen ~grid:[ 60; 30; 15; 5; 1 ] ~test p in
  check (Alcotest.list Alcotest.int) "snapped delays" [ 15; 5 ] (delays coarse);
  check_bool "probed" true (probes > 0);
  (* Anchors and machines survive coarsening untouched. *)
  check_bool "anchor kept" true
    (match (List.nth coarse.Plan.faults 1).Plan.anchor with
    | Plan.On_reload { nth = 3; delay = 5 } -> true
    | _ -> false)

let test_coarsen_already_coarse () =
  let p = { Plan.n_machines = 8; faults = [ { Plan.machine = 0; anchor = Plan.After 60; kind = Plan.Kill } ] } in
  let coarse, probes = Shrink.coarsen ~grid:[ 60; 30; 15; 5; 1 ] ~test:(fun _ -> true) p in
  check plan_testable "already on the coarsest grid" p coarse;
  check_int "free" 0 probes

(* ------------------------------------------------------------------ *)
(* Search streams *)

let stream_config =
  { (Explore.default_config ~n_machines:8 ~targets:[ 0; 1; 2; 3 ] ~buckets:[ 12; 3 ]) with Explore.budget = 80 }

let test_plans_stream () =
  (* 4 targets x 2 buckets x 1 kind = 8 singles, 64 ordered pairs. *)
  let ps = Explore.plans stream_config in
  check_int "grid size" 72 (List.length ps);
  check_int "budget truncates" 10 (List.length (Explore.plans { stream_config with Explore.budget = 10 }));
  let sampled = Explore.plans { stream_config with Explore.max_faults = 3; budget = 80 } in
  check_int "sampler fills the budget" 80 (List.length sampled);
  check_bool "sampled plans carry 3 faults" true
    (List.exists (fun p -> List.length p.Plan.faults = 3) sampled);
  check (Alcotest.list plan_testable) "stream is deterministic" sampled
    (Explore.plans { stream_config with Explore.max_faults = 3; budget = 80 })

(* ------------------------------------------------------------------ *)
(* Acceptance demo: the seeded dispatcher race *)

(* Small stencil deployment (the test_par golden configuration): fast,
   deterministic, and — with the seeded race compiled in — buggy
   whenever a second strike lands inside a recovery wave. *)
let demo_spec ~seeded =
  let n_ranks = 4 and n_machines = 8 in
  let app =
    Workload.Stencil.app
      { Workload.Stencil.iterations = 60; compute_time = 0.5; msg_bytes = 5_000; jitter = 0.0 }
      ~n_ranks
  in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.protocol = Mpivcl.Config.Non_blocking;
      wave_interval = 10.0;
      term_straggler_prob = 0.0;
      dispatcher_buggy = false;
      vcl_seeded_race = seeded;
    }
  in
  {
    (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes:1_000_000) with
    Failmpi.Run.timeout = 300.0;
    seed = 1L;
  }

let search ~seeded ~jobs =
  Explore.run ~jobs stream_config ~runner:(Explore.runner_of_spec (demo_spec ~seeded))

let seeded_j4 = lazy (search ~seeded:true ~jobs:4)
let seeded_j1 = lazy (search ~seeded:true ~jobs:1)
let defect_off = lazy (search ~seeded:false ~jobs:4)

let buggy_records rp =
  List.filter (fun rc -> rc.Explore.verdict = Explore.Buggy) rp.Explore.records

let test_seeded_defect_found () =
  let rp = Lazy.force seeded_j4 in
  check_int "all plans ran" 72 (List.length rp.Explore.records);
  check_bool "the race was rediscovered" true (buggy_records rp <> []);
  check_bool "single faults never trigger it" true
    (List.for_all
       (fun rc -> List.length rc.Explore.plan.Plan.faults >= 2)
       (buggy_records rp));
  (* Coverage partitions the records. *)
  check_int "coverage counts partition the runs" (List.length rp.Explore.records)
    (List.fold_left (fun acc (_, _, n) -> acc + n) 0 rp.Explore.coverage);
  check_bool "has witnesses" true (rp.Explore.minimized <> []);
  List.iter
    (fun m ->
      check_str "witness classification" (vname Explore.Buggy) (vname m.Explore.min_verdict);
      check_bool "shrunk to <= 2 faults" true (List.length m.Explore.min_plan.Plan.faults <= 2);
      check_bool "shrinking re-ran the oracle" true (m.Explore.probes > 0))
    rp.Explore.minimized

let test_witness_replays () =
  let rp = Lazy.force seeded_j4 in
  let m = List.hd rp.Explore.minimized in
  (* The emitted FAIL source parses back to exactly the minimized plan... *)
  check plan_testable "emitted scenario round-trips" m.Explore.min_plan
    (parse_back m.Explore.scenario);
  (* ...replays with the same classification with the defect present... *)
  let replay = Explore.runner_of_spec (demo_spec ~seeded:true) m.Explore.min_plan in
  check_str "replay reproduces the verdict" (vname Explore.Buggy)
    (vname (Explore.verdict_of_outcome replay.Failmpi.Run.outcome));
  check_bool "both strikes landed" true (replay.Failmpi.Run.injected_faults >= 2);
  (* ...and completes cleanly once the defect is disabled. *)
  let fixed = Explore.runner_of_spec (demo_spec ~seeded:false) m.Explore.min_plan in
  check_str "defect off: witness is harmless" (vname Explore.Completed)
    (vname (Explore.verdict_of_outcome fixed.Failmpi.Run.outcome))

let test_defect_off_clean () =
  let rp = Lazy.force defect_off in
  check_int "zero buggy runs" 0 (List.length (buggy_records rp));
  check_int "nothing to minimize" 0 (List.length rp.Explore.minimized)

let test_jobs_identical () =
  check_str "jobs 1 = jobs 4, byte for byte"
    (Explore.to_json (Lazy.force seeded_j1))
    (Explore.to_json (Lazy.force seeded_j4))

let () =
  Alcotest.run "explore"
    [
      ( "plan",
        [
          Alcotest.test_case "scenario round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "keys" `Quick test_plan_key;
          Alcotest.test_case "double_strike.fail" `Quick test_double_strike_file;
          Alcotest.test_case "service plan round-trip" `Quick test_service_plan_roundtrip;
          Alcotest.test_case "align_service" `Quick test_align_service;
          Alcotest.test_case "ckpt_sniper.fail" `Quick test_ckpt_sniper_file;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "ddmin singleton" `Quick test_ddmin_singleton;
          Alcotest.test_case "ddmin pair" `Quick test_ddmin_pair;
          Alcotest.test_case "ddmin irreducible" `Quick test_ddmin_irreducible;
          Alcotest.test_case "coarsen" `Quick test_coarsen;
          Alcotest.test_case "coarsen already coarse" `Quick test_coarsen_already_coarse;
        ] );
      ("stream", [ Alcotest.test_case "plans" `Quick test_plans_stream ]);
      ( "acceptance",
        [
          Alcotest.test_case "seeded defect found and shrunk" `Quick test_seeded_defect_found;
          Alcotest.test_case "witness replays" `Quick test_witness_replays;
          Alcotest.test_case "defect off is clean" `Quick test_defect_off_clean;
          Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs_identical;
        ] );
    ]
