(* Integration tests for the MPICH-Vcl substrate: failure-free runs,
   rollback-recovery correctness (checksum-validated), checkpoint server
   behaviour, the dispatcher recovery bug and its fix, and the blocking
   protocol variant. *)

open Simkern
open Simos
open Mpivcl

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* A small, fast stencil configuration for tests. *)
let test_params = { Workload.Stencil.iterations = 30; compute_time = 0.5; msg_bytes = 10_000; jitter = 0.0 }

let test_cfg ~n_ranks =
  {
    (Config.default ~n_ranks) with
    Config.wave_interval = 5.0;
    server_bandwidth = 1e8;
    init_delay_min = 0.1;
    init_delay_max = 0.1;
    ssh_delay = 0.3;
    relaunch_delay = 0.0;
    term_lag_min = 0.2;
    term_lag_max = 2.0;
    term_straggler_prob = 0.0;
    store_jitter = 0.0;
  }

(* Captures each rank's final state after its last (re-)execution. *)
let instrument_app app results =
  {
    app with
    App.main =
      (fun ctx ->
        app.App.main ctx;
        Hashtbl.replace results ctx.App.rank ctx.App.state.(2));
  }

type run = {
  eng : Engine.t;
  handle : Deploy.handle;
  results : (int, int) Hashtbl.t;
  reference : int;
  n_ranks : int;
}

let setup ?(seed = 7L) ?(n_ranks = 4) ?(n_compute = 6) ?cfg ?params () =
  let params = Option.value ~default:test_params params in
  let cfg = match cfg with Some c -> c | None -> test_cfg ~n_ranks in
  let eng = Engine.create ~seed () in
  let results = Hashtbl.create 16 in
  let app = instrument_app (Workload.Stencil.app params ~n_ranks) results in
  let handle = Deploy.launch eng ~cfg ~app ~state_bytes:1_000_000 ~n_compute () in
  let reference = Workload.Stencil.reference_checksum params ~n_ranks in
  { eng; handle; results; reference; n_ranks }

let run_until run t = ignore (Engine.run ~until:t run.eng)

let assert_completed ?(msg = "completed") run =
  match Dispatcher.peek_outcome run.handle.Deploy.dispatcher with
  | Some (Dispatcher.Completed _) -> ()
  | Some (Dispatcher.Aborted reason) -> Alcotest.failf "%s: aborted: %s" msg reason
  | None -> Alcotest.failf "%s: still running" msg

let assert_checksums run =
  check_int "all ranks reported" run.n_ranks (Hashtbl.length run.results);
  Hashtbl.iter
    (fun rank checksum ->
      check_int (Printf.sprintf "rank %d checksum" rank) run.reference checksum)
    run.results

(* Kill the whole MPI task of [rank] (communication daemon + computation
   process), as a FAIL-MPI halt does. *)
let kill_rank run rank =
  let cluster = Deploy.cluster run.handle in
  let killed = ref 0 in
  List.iter
    (fun (h : Cluster.host) ->
      List.iter
        (fun p ->
          let name = Proc.name p in
          if
            String.equal name (Printf.sprintf "vdaemon-%d" rank)
            || String.equal name (Printf.sprintf "mpi-%d" rank)
          then begin
            Proc.kill p;
            incr killed
          end)
        (Cluster.tasks cluster ~host:h.Cluster.host_id))
    (Cluster.hosts cluster);
  !killed

(* ------------------------------------------------------------------ *)

let test_failure_free_completes () =
  let run = setup () in
  run_until run 100.0;
  assert_completed run;
  assert_checksums run

let test_failure_free_9_ranks () =
  let run = setup ~n_ranks:9 ~n_compute:11 () in
  run_until run 100.0;
  assert_completed run;
  assert_checksums run

let test_single_rank () =
  let run = setup ~n_ranks:1 ~n_compute:2 () in
  run_until run 100.0;
  assert_completed run;
  assert_checksums run

let test_waves_commit () =
  let run = setup () in
  run_until run 100.0;
  check_bool "at least two committed waves" true
    (match run.handle.Deploy.scheduler with
    | Some s -> Scheduler.committed_count s >= 2
    | None -> false)

let test_frequent_waves_correct () =
  (* Stress the non-blocking cut path: waves far more frequent than
     iterations. *)
  let cfg = { (test_cfg ~n_ranks:4) with Config.wave_interval = 1.0 } in
  let run = setup ~cfg () in
  run_until run 120.0;
  assert_completed run;
  assert_checksums run

let test_single_fault_recovers () =
  let run = setup () in
  Engine.schedule run.eng ~delay:8.0 (fun () -> ignore (kill_rank run 2)) |> ignore;
  run_until run 300.0;
  check_bool "one recovery" true (Dispatcher.recoveries run.handle.Deploy.dispatcher >= 1);
  assert_completed run;
  assert_checksums run

let test_fault_before_first_commit () =
  (* Failure before any wave committed: everything restarts from
     scratch. *)
  let cfg = { (test_cfg ~n_ranks:4) with Config.wave_interval = 1000.0 } in
  let run = setup ~cfg () in
  Engine.schedule run.eng ~delay:5.0 (fun () -> ignore (kill_rank run 1)) |> ignore;
  run_until run 300.0;
  assert_completed run;
  assert_checksums run

let test_sequential_faults_recover () =
  let run = setup () in
  List.iter
    (fun (delay, rank) ->
      Engine.schedule run.eng ~delay (fun () -> ignore (kill_rank run rank)) |> ignore)
    [ (7.0, 0); (13.0, 3); (19.0, 1) ];
  run_until run 400.0;
  check_bool "three recoveries" true (Dispatcher.recoveries run.handle.Deploy.dispatcher >= 3);
  assert_completed run;
  assert_checksums run

let test_fault_on_spare_rank_moves () =
  let run = setup () in
  Engine.schedule run.eng ~delay:8.0 (fun () -> ignore (kill_rank run 2)) |> ignore;
  run_until run 300.0;
  assert_completed run;
  (* The failed rank must have been reallocated to a spare host. *)
  let trace = Engine.trace run.eng in
  check_bool "reallocated" true (Trace.count trace ~event:"reallocate" >= 1)

let test_blocking_protocol () =
  let cfg = { (test_cfg ~n_ranks:4) with Config.protocol = Config.Blocking } in
  let run = setup ~cfg () in
  Engine.schedule run.eng ~delay:9.0 (fun () -> ignore (kill_rank run 1)) |> ignore;
  run_until run 300.0;
  assert_completed run;
  assert_checksums run

(* Engineer the recovery race: kill a rank, then kill its relaunched
   daemon shortly after it re-registers, while old-wave daemons are still
   stopping. *)
let engineer_race ~buggy ~seed =
  let cfg = { (test_cfg ~n_ranks:4) with Config.dispatcher_buggy = buggy } in
  let run = setup ~seed ~cfg () in
  Engine.schedule run.eng ~delay:8.0 (fun () -> ignore (kill_rank run 2)) |> ignore;
  (* The replacement daemon registers after ~ssh (0.3 s) + handshake
     (0.1 s); old daemons take 0.2..2 s to stop. Kill at +0.9 s. *)
  Engine.schedule run.eng ~delay:8.9 (fun () -> ignore (kill_rank run 2)) |> ignore;
  run_until run 400.0;
  run

let test_buggy_dispatcher_freezes () =
  let run = engineer_race ~buggy:true ~seed:11L in
  check_bool "dispatcher confused" true (Dispatcher.confused run.handle.Deploy.dispatcher);
  check_bool "frozen, not completed" true
    (Dispatcher.peek_outcome run.handle.Deploy.dispatcher = None)

let test_fixed_dispatcher_survives () =
  let run = engineer_race ~buggy:false ~seed:11L in
  check_bool "not confused" false (Dispatcher.confused run.handle.Deploy.dispatcher);
  assert_completed run ~msg:"fixed dispatcher";
  assert_checksums run

let test_spawn_kill_retries () =
  (* Killing the daemon before it registers must lead to a clean retry,
     not to confusion (the paper's Figure 9 "clean" cases). *)
  let run = setup () in
  Engine.schedule run.eng ~delay:8.0 (fun () -> ignore (kill_rank run 2)) |> ignore;
  (* Relaunch ssh takes 0.3 s; kill during it (pre-Hello). *)
  Engine.schedule run.eng ~delay:8.35 (fun () -> ignore (kill_rank run 2)) |> ignore;
  run_until run 400.0;
  check_bool "never confused" false (Dispatcher.confused run.handle.Deploy.dispatcher);
  assert_completed run;
  assert_checksums run

(* ------------------------------------------------------------------ *)
(* Sender-based message logging (MPICH-V2-style) *)

let v2_cfg ~n_ranks = { (test_cfg ~n_ranks) with Config.protocol = Config.Sender_logging }

let test_v2_failure_free () =
  let run = setup ~cfg:(v2_cfg ~n_ranks:4) () in
  run_until run 100.0;
  assert_completed run;
  assert_checksums run;
  (* Independent checkpoints happened. *)
  let trace = Engine.trace run.eng in
  check_bool "independent checkpoints" true
    (Trace.count trace ~event:"checkpoint-committed" >= 4)

let test_v2_single_fault_restarts_only_failed () =
  let run = setup ~cfg:(v2_cfg ~n_ranks:4) () in
  Engine.schedule run.eng ~delay:8.0 (fun () -> ignore (kill_rank run 2)) |> ignore;
  run_until run 300.0;
  assert_completed run;
  assert_checksums run;
  let trace = Engine.trace run.eng in
  check_int "no termination orders" 0 (Trace.count trace ~event:"terminate-order");
  check_int "no global recovery" 0 (Trace.count trace ~event:"recovery-start");
  check_bool "failed rank resumed individually" true
    (Trace.count trace ~event:"rank-resumed" >= 1);
  check_bool "log resend happened" true (Trace.count trace ~event:"resend" >= 1)

let test_v2_fault_before_first_checkpoint () =
  let cfg = { (v2_cfg ~n_ranks:4) with Config.wave_interval = 1000.0 } in
  let run = setup ~cfg () in
  Engine.schedule run.eng ~delay:6.0 (fun () -> ignore (kill_rank run 1)) |> ignore;
  run_until run 300.0;
  assert_completed run;
  assert_checksums run

let test_v2_sequential_faults () =
  let run = setup ~cfg:(v2_cfg ~n_ranks:4) () in
  List.iter
    (fun (delay, rank) ->
      Engine.schedule run.eng ~delay (fun () -> ignore (kill_rank run rank)) |> ignore)
    [ (6.0, 0); (11.0, 3); (16.0, 0) ];
  run_until run 300.0;
  assert_completed run;
  assert_checksums run;
  check_bool "three restarts" true (Dispatcher.recoveries run.handle.Deploy.dispatcher >= 3)

let test_v2_concurrent_faults () =
  (* Two ranks down at once: each recovers from its own image; the
     checkpointed send logs make the resends possible. *)
  let run = setup ~cfg:(v2_cfg ~n_ranks:4) () in
  Engine.schedule run.eng ~delay:12.0 (fun () ->
      ignore (kill_rank run 1);
      ignore (kill_rank run 2))
  |> ignore;
  run_until run 300.0;
  assert_completed run;
  assert_checksums run

let prop_v2_random_faults_correct =
  QCheck.Test.make ~name:"V2: random faults complete correctly" ~count:15
    QCheck.(pair (int_bound 1_000_000) (list_of_size (Gen.int_range 1 4) (pair (int_bound 3) (float_range 5.0 40.0))))
    (fun (seed, faults) ->
      let run = setup ~seed:(Int64.of_int seed) ~cfg:(v2_cfg ~n_ranks:4) () in
      List.iter
        (fun (rank, delay) ->
          Engine.schedule run.eng ~delay (fun () -> ignore (kill_rank run rank)) |> ignore)
        faults;
      run_until run 2000.0;
      match Dispatcher.peek_outcome run.handle.Deploy.dispatcher with
      | Some (Dispatcher.Completed _) ->
          Hashtbl.length run.results = run.n_ranks
          && Hashtbl.fold (fun _ v acc -> acc && v = run.reference) run.results true
      | Some (Dispatcher.Aborted _) | None -> false)

(* ------------------------------------------------------------------ *)
(* Checkpoint server unit tests *)

let mk_image ~rank ~wave ~bytes =
  {
    Message.img_rank = rank;
    img_wave = wave;
    img_state = [| wave; rank |];
    img_buffer = [];
    img_redelivery = [];
    img_logged = [];
    img_seen = [];
    img_received = [];
    img_send_log = [];
    img_next_ssn = [];
    img_bytes = bytes;
  }

let with_server f =
  let eng = Engine.create () in
  let cluster = Cluster.create eng ~size:3 in
  let net = Simnet.Net.create eng () in
  let server = Ckpt_server.spawn eng cluster net ~host:0 ~bandwidth:1e6 () in
  f eng cluster net server

let test_server_store_commit_fetch () =
  with_server (fun eng cluster net server ->
      let got = ref None in
      ignore
        (Cluster.spawn_on cluster ~host:1 ~name:"client" (fun () ->
             match Simnet.Net.connect net ~host:1 ~to_host:0 ~to_port:Config.server_port with
             | Error `Refused -> Alcotest.fail "refused"
             | Ok conn ->
                 ignore (Simnet.Net.send conn (Message.Store { image = mk_image ~rank:3 ~wave:1 ~bytes:1_000_000 }));
                 (match Simnet.Net.recv conn with
                 | Simnet.Net.Data (Message.Store_done { wave = 1 }) -> ()
                 | _ -> Alcotest.fail "expected Store_done");
                 (* Not committed yet: fetch must find nothing. *)
                 ignore (Simnet.Net.send conn (Message.Fetch { rank = 3; local_wave = None }));
                 (match Simnet.Net.recv conn with
                 | Simnet.Net.Data (Message.Fetch_image { image = None }) -> ()
                 | _ -> Alcotest.fail "expected empty fetch before commit");
                 ignore (Simnet.Net.send conn (Message.Commit { wave = 1 }));
                 Proc.sleep 0.1;
                 ignore (Simnet.Net.send conn (Message.Fetch { rank = 3; local_wave = None }));
                 (match Simnet.Net.recv conn with
                 | Simnet.Net.Data (Message.Fetch_image { image = Some img }) ->
                     got := Some img.Message.img_wave
                 | _ -> Alcotest.fail "expected image after commit")));
      ignore (Engine.run ~until:60.0 eng);
      check_bool "fetched wave 1" true (!got = Some 1);
      check_bool "committed introspection" true (Ckpt_server.committed_wave server ~rank:3 = Some 1))

let test_server_transfer_takes_time () =
  with_server (fun eng cluster net _server ->
      let stored_at = ref 0.0 in
      ignore
        (Cluster.spawn_on cluster ~host:1 ~name:"client" (fun () ->
             match Simnet.Net.connect net ~host:1 ~to_host:0 ~to_port:Config.server_port with
             | Error `Refused -> Alcotest.fail "refused"
             | Ok conn ->
                 (* 2 MB at 1 MB/s: the ack must arrive after ~2 s. *)
                 ignore
                   (Simnet.Net.send conn (Message.Store { image = mk_image ~rank:0 ~wave:1 ~bytes:2_000_000 }));
                 (match Simnet.Net.recv conn with
                 | Simnet.Net.Data (Message.Store_done _) -> stored_at := Engine.now eng
                 | _ -> Alcotest.fail "expected Store_done")));
      ignore (Engine.run ~until:30.0 eng);
      check_bool "took about 2s" true (!stored_at >= 2.0 && !stored_at < 2.5))

let test_server_use_local () =
  with_server (fun eng cluster net _server ->
      let used_local = ref false in
      ignore
        (Cluster.spawn_on cluster ~host:1 ~name:"client" (fun () ->
             match Simnet.Net.connect net ~host:1 ~to_host:0 ~to_port:Config.server_port with
             | Error `Refused -> Alcotest.fail "refused"
             | Ok conn ->
                 ignore (Simnet.Net.send conn (Message.Store { image = mk_image ~rank:0 ~wave:4 ~bytes:1000 }));
                 (match Simnet.Net.recv conn with
                 | Simnet.Net.Data (Message.Store_done _) -> ()
                 | _ -> Alcotest.fail "no store ack");
                 ignore (Simnet.Net.send conn (Message.Commit { wave = 4 }));
                 Proc.sleep 0.1;
                 ignore (Simnet.Net.send conn (Message.Fetch { rank = 0; local_wave = Some 4 }));
                 (match Simnet.Net.recv conn with
                 | Simnet.Net.Data (Message.Fetch_use_local { wave = 4 }) -> used_local := true
                 | _ -> ())));
      ignore (Engine.run ~until:30.0 eng);
      check_bool "server told client to use local disk" true !used_local)

(* ------------------------------------------------------------------ *)
(* Storage plane: torn-write detection, mirroring, resync *)

(* Kill the server at instants spanning the whole wave-2 store window —
   before the transfer, during it, and after the seal — with wave 1
   already committed. Whatever the instant, the respawned server's
   restart scan must leave the committed image exactly at wave 1:
   never torn, never regressed, never absent. *)
let test_commit_invariant_under_kill_sweep () =
  List.iter
    (fun kill_at ->
      let eng = Engine.create () in
      let cluster = Cluster.create eng ~size:3 in
      let net = Simnet.Net.create eng () in
      let server = Ckpt_server.spawn eng cluster net ~host:0 ~bandwidth:1e6 ~respawn:5.0 () in
      ignore
        (Cluster.spawn_on cluster ~host:1 ~name:"client" (fun () ->
             match Simnet.Net.connect net ~host:1 ~to_host:0 ~to_port:Config.server_port with
             | Error `Refused -> Alcotest.fail "refused"
             | Ok conn ->
                 ignore
                   (Simnet.Net.send conn
                      (Message.Store { image = mk_image ~rank:3 ~wave:1 ~bytes:500_000 }));
                 (match Simnet.Net.recv conn with
                 | Simnet.Net.Data (Message.Store_done { wave = 1 }) -> ()
                 | _ -> Alcotest.fail "expected Store_done for wave 1");
                 ignore (Simnet.Net.send conn (Message.Commit { wave = 1 }));
                 Proc.sleep 0.5;
                 (* 2 MB at 1 MB/s: the wave-2 store window is ~[1, 3] s. *)
                 ignore
                   (Simnet.Net.send conn
                      (Message.Store { image = mk_image ~rank:3 ~wave:2 ~bytes:2_000_000 }));
                 ignore (Simnet.Net.recv conn)));
      ignore (Engine.schedule eng ~delay:kill_at (fun () -> Ckpt_server.inject_kill server));
      ignore (Engine.run ~until:60.0 eng);
      let label = Printf.sprintf "kill at %.2f" kill_at in
      check_bool (label ^ ": committed image stays at wave 1") true
        (Ckpt_server.committed_wave server ~rank:3 = Some 1);
      check_bool (label ^ ": no torn slot survives the restart scan") true
        (not (Ckpt_server.pending_torn server ~rank:3));
      check_int (label ^ ": server respawned once") 1 (Ckpt_server.respawns server);
      (* A kill well inside the transfer must leave — and be seen to
         discard — exactly one torn image. *)
      if kill_at >= 1.5 && kill_at <= 2.5 then
        check_int (label ^ ": torn image discarded") 1 (Ckpt_server.torn_discarded server);
      Ckpt_server.halt server)
    [ 0.9; 1.1; 1.5; 2.0; 2.5; 2.9; 3.2; 4.0 ]

(* Two mirrored servers in a ring. *)
let with_server_pair ?respawn f =
  let eng = Engine.create () in
  let cluster = Cluster.create eng ~size:4 in
  let net = Simnet.Net.create eng () in
  let hosts = [| 0; 1 |] in
  let spawn ~host ~index =
    Ckpt_server.spawn eng cluster net ~host ~bandwidth:1e6 ~index ~server_hosts:hosts
      ~replicas:2 ?respawn ()
  in
  f eng cluster net (spawn ~host:0 ~index:0) (spawn ~host:1 ~index:1)

let server_conn net ~host ~to_host =
  match Simnet.Net.connect net ~host ~to_host ~to_port:Config.server_port with
  | Error `Refused -> Alcotest.fail "server refused"
  | Ok conn -> conn

(* A store ack from the primary promises the mirror already holds the
   sealed copy: committing on the mirror alone must produce the image. *)
let test_mirrored_store_reaches_mirror () =
  with_server_pair (fun eng cluster net a b ->
      let fetched = ref None in
      ignore
        (Cluster.spawn_on cluster ~host:2 ~name:"client" (fun () ->
             (* rank 2: primary index 0 (host 0), mirror index 1 *)
             let conn = server_conn net ~host:2 ~to_host:0 in
             ignore
               (Simnet.Net.send conn
                  (Message.Store { image = mk_image ~rank:2 ~wave:1 ~bytes:100_000 }));
             (match Simnet.Net.recv conn with
             | Simnet.Net.Data (Message.Store_done { wave = 1 }) -> ()
             | _ -> Alcotest.fail "expected Store_done");
             let mirror = server_conn net ~host:2 ~to_host:1 in
             ignore (Simnet.Net.send mirror (Message.Commit { wave = 1 }));
             Proc.sleep 0.1;
             ignore (Simnet.Net.send mirror (Message.Fetch { rank = 2; local_wave = None }));
             match Simnet.Net.recv mirror with
             | Simnet.Net.Data (Message.Fetch_image { image = Some img }) ->
                 fetched := Some img.Message.img_wave
             | _ -> Alcotest.fail "mirror had no image to serve"));
      ignore (Engine.run ~until:30.0 eng);
      check_bool "mirror serves the image the primary acked" true (!fetched = Some 1);
      check_bool "mirror committed introspection" true
        (Ckpt_server.committed_wave b ~rank:2 = Some 1);
      ignore a)

(* Images committed while a server was dead reach it through the
   restart resync pull — the respawned primary serves its shard again
   without any new store. *)
let test_respawned_server_resyncs_shard () =
  with_server_pair ~respawn:3.0 (fun eng cluster net a b ->
      ignore
        (Cluster.spawn_on cluster ~host:2 ~name:"client" (fun () ->
             (* wave 1 through the primary while it is alive *)
             let conn = server_conn net ~host:2 ~to_host:0 in
             ignore
               (Simnet.Net.send conn
                  (Message.Store { image = mk_image ~rank:2 ~wave:1 ~bytes:100_000 }));
             (match Simnet.Net.recv conn with
             | Simnet.Net.Data (Message.Store_done _) -> ()
             | _ -> Alcotest.fail "expected Store_done");
             ignore (Simnet.Net.send conn (Message.Commit { wave = 1 }));
             let mirror = server_conn net ~host:2 ~to_host:1 in
             ignore (Simnet.Net.send mirror (Message.Commit { wave = 1 }));
             Proc.sleep 1.0;
             Ckpt_server.inject_kill a;
             (* wave 2 lands on the survivor while the primary is down
                (the daemons' fetch/store failover path) *)
             Proc.sleep 1.0;
             let surv = server_conn net ~host:2 ~to_host:1 in
             ignore
               (Simnet.Net.send surv
                  (Message.Store { image = mk_image ~rank:2 ~wave:2 ~bytes:100_000 }));
             (match Simnet.Net.recv surv with
             | Simnet.Net.Data (Message.Store_done _) -> ()
             | _ -> Alcotest.fail "expected survivor Store_done");
             ignore (Simnet.Net.send surv (Message.Commit { wave = 2 }))));
      ignore (Engine.run ~until:30.0 eng);
      check_int "primary respawned" 1 (Ckpt_server.respawns a);
      check_bool "respawn pulled the missed wave" true (Ckpt_server.resyncs a >= 1);
      check_bool "primary serves wave 2 it never stored" true
        (Ckpt_server.committed_wave a ~rank:2 = Some 2);
      check_bool "survivor unchanged" true (Ckpt_server.committed_wave b ~rank:2 = Some 2))

(* ------------------------------------------------------------------ *)
(* Local disk *)

let test_local_disk_retention () =
  let disk = Local_disk.create () in
  Local_disk.store disk ~host:1 (mk_image ~rank:0 ~wave:1 ~bytes:10);
  Local_disk.store disk ~host:1 (mk_image ~rank:0 ~wave:2 ~bytes:10);
  Local_disk.store disk ~host:1 (mk_image ~rank:0 ~wave:3 ~bytes:10);
  check_bool "newest" true (Local_disk.newest_wave disk ~host:1 ~rank:0 = Some 3);
  check_bool "wave 2 kept" true (Local_disk.lookup disk ~host:1 ~rank:0 ~wave:2 <> None);
  check_bool "wave 1 evicted (two-file alternation)" true
    (Local_disk.lookup disk ~host:1 ~rank:0 ~wave:1 = None);
  check_bool "other host empty" true (Local_disk.newest_wave disk ~host:2 ~rank:0 = None)

(* ------------------------------------------------------------------ *)
(* Property: random fault schedules with the fixed dispatcher always
   terminate with the correct checksum. *)

let prop_random_faults_correct =
  QCheck.Test.make ~name:"random faults: fixed dispatcher completes correctly" ~count:15
    QCheck.(pair (int_bound 1_000_000) (list_of_size (Gen.int_range 1 4) (pair (int_bound 3) (float_range 5.0 60.0))))
    (fun (seed, faults) ->
      let cfg = { (test_cfg ~n_ranks:4) with Config.dispatcher_buggy = false } in
      let run = setup ~seed:(Int64.of_int seed) ~cfg () in
      List.iter
        (fun (rank, delay) ->
          Engine.schedule run.eng ~delay (fun () -> ignore (kill_rank run rank)) |> ignore)
        faults;
      run_until run 2000.0;
      match Dispatcher.peek_outcome run.handle.Deploy.dispatcher with
      | Some (Dispatcher.Completed _) ->
          Hashtbl.length run.results = run.n_ranks
          && Hashtbl.fold (fun _ v acc -> acc && v = run.reference) run.results true
      | Some (Dispatcher.Aborted _) | None -> false)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_random_faults_correct; prop_v2_random_faults_correct ]
  in
  Alcotest.run "mpivcl"
    [
      ( "failure-free",
        [
          Alcotest.test_case "completes with correct checksum" `Quick test_failure_free_completes;
          Alcotest.test_case "9 ranks" `Quick test_failure_free_9_ranks;
          Alcotest.test_case "single rank" `Quick test_single_rank;
          Alcotest.test_case "waves commit" `Quick test_waves_commit;
          Alcotest.test_case "frequent waves" `Quick test_frequent_waves_correct;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "single fault" `Quick test_single_fault_recovers;
          Alcotest.test_case "fault before first commit" `Quick test_fault_before_first_commit;
          Alcotest.test_case "sequential faults" `Quick test_sequential_faults_recover;
          Alcotest.test_case "failed rank moves to spare" `Quick test_fault_on_spare_rank_moves;
          Alcotest.test_case "blocking protocol" `Quick test_blocking_protocol;
        ] );
      ( "dispatcher-bug",
        [
          Alcotest.test_case "buggy dispatcher freezes" `Quick test_buggy_dispatcher_freezes;
          Alcotest.test_case "fixed dispatcher survives" `Quick test_fixed_dispatcher_survives;
          Alcotest.test_case "pre-registration kill retries cleanly" `Quick test_spawn_kill_retries;
        ] );
      ( "v2-protocol",
        [
          Alcotest.test_case "failure free" `Quick test_v2_failure_free;
          Alcotest.test_case "restarts only failed rank" `Quick
            test_v2_single_fault_restarts_only_failed;
          Alcotest.test_case "fault before first checkpoint" `Quick
            test_v2_fault_before_first_checkpoint;
          Alcotest.test_case "sequential faults" `Quick test_v2_sequential_faults;
          Alcotest.test_case "concurrent faults" `Quick test_v2_concurrent_faults;
        ] );
      ( "ckpt-server",
        [
          Alcotest.test_case "store/commit/fetch" `Quick test_server_store_commit_fetch;
          Alcotest.test_case "transfer takes time" `Quick test_server_transfer_takes_time;
          Alcotest.test_case "use local disk" `Quick test_server_use_local;
        ] );
      ( "storage-plane",
        [
          Alcotest.test_case "commit invariant under kill sweep" `Quick
            test_commit_invariant_under_kill_sweep;
          Alcotest.test_case "mirrored store reaches mirror" `Quick
            test_mirrored_store_reaches_mirror;
          Alcotest.test_case "respawned server resyncs shard" `Quick
            test_respawned_server_resyncs_shard;
        ] );
      ("local-disk", [ Alcotest.test_case "retention" `Quick test_local_disk_retention ]);
      ("properties", qsuite);
    ]
