(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one [Test.make] per table/figure of
   the paper (a scaled-down experiment cycle measuring the cost of the
   machinery that regenerates it), plus micro-benchmarks of the hot
   substrate paths (event queue, mailboxes, FAIL front end).

   Part 2 — regenerates every table and figure. By default the quick
   configurations run (a couple of minutes); set FAILMPI_BENCH_FULL=1 for
   the paper-sized campaign (same as `failmpi_experiments all`). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Scaled-down experiment cycles, one per figure *)

let small_params =
  { Workload.Stencil.iterations = 15; compute_time = 0.4; msg_bytes = 4_000; jitter = 0.0 }

let small_run ?scenario ~seed () =
  let n_ranks = 4 in
  let app = Workload.Stencil.app small_params ~n_ranks in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.wave_interval = 5.0;
      term_straggler_prob = 0.0;
    }
  in
  let spec =
    {
      (Failmpi.Run.default_spec ~app ~cfg ~n_compute:8 ~state_bytes:500_000) with
      Failmpi.Run.scenario;
      seed;
      timeout = 120.0;
    }
  in
  Failmpi.Run.execute spec

let test_table1 =
  Test.make ~name:"table1:tool-comparison"
    (Staged.stage (fun () -> ignore (Fail_lang.Tool_comparison.render ())))

let test_fig5_cycle =
  let scenario = Fail_lang.Paper_scenarios.frequency ~n_machines:8 ~period:10 in
  Test.make ~name:"fig5:frequency-run"
    (Staged.stage (fun () -> ignore (small_run ~scenario ~seed:1L ())))

let test_fig6_cycle =
  Test.make ~name:"fig6:scale-run" (Staged.stage (fun () -> ignore (small_run ~seed:2L ())))

let test_fig7_cycle =
  let scenario = Fail_lang.Paper_scenarios.simultaneous ~n_machines:8 ~period:10 ~count:2 in
  Test.make ~name:"fig7:simultaneous-run"
    (Staged.stage (fun () -> ignore (small_run ~scenario ~seed:3L ())))

let test_fig9_cycle =
  let scenario = Fail_lang.Paper_scenarios.synchronized ~n_machines:8 ~period:10 in
  Test.make ~name:"fig9:synchronized-run"
    (Staged.stage (fun () -> ignore (small_run ~scenario ~seed:4L ())))

let test_fig11_cycle =
  let scenario = Fail_lang.Paper_scenarios.state_synchronized ~n_machines:8 ~period:10 in
  Test.make ~name:"fig11:state-sync-run"
    (Staged.stage (fun () -> ignore (small_run ~scenario ~seed:5L ())))

let small_rep_run ?scenario ~seed () =
  let n_ranks = 4 in
  let app = Workload.Stencil.app small_params ~n_ranks in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.protocol = Mpivcl.Config.Replication { degree = 2 };
      term_straggler_prob = 0.0;
    }
  in
  let spec =
    {
      (Failmpi.Run.default_spec ~app ~cfg ~n_compute:10 ~state_bytes:500_000) with
      Failmpi.Run.scenario;
      seed;
      timeout = 120.0;
    }
  in
  Failmpi.Run.execute spec

let test_replication_cycle =
  Test.make ~name:"families:replication-run"
    (Staged.stage (fun () -> ignore (small_rep_run ~seed:6L ())))

let test_replication_failover_cycle =
  let scenario = Fail_lang.Paper_scenarios.frequency ~n_machines:10 ~period:10 in
  Test.make ~name:"families:replication-failover-run"
    (Staged.stage (fun () -> ignore (small_rep_run ~scenario ~seed:7L ())))

(* ------------------------------------------------------------------ *)
(* Substrate micro-benchmarks *)

let test_engine_events =
  Test.make ~name:"micro:engine-1k-events"
    (Staged.stage (fun () ->
         let open Simkern in
         let eng = Engine.create () in
         for i = 1 to 1000 do
           ignore (Engine.schedule eng ~delay:(float_of_int i *. 0.001) (fun () -> ()))
         done;
         ignore (Engine.run eng)))

let test_mailbox_throughput =
  Test.make ~name:"micro:mailbox-1k-msgs"
    (Staged.stage (fun () ->
         let open Simkern in
         let eng = Engine.create () in
         let mb = Mailbox.create () in
         ignore
           (Proc.spawn eng (fun () ->
                for _ = 1 to 1000 do
                  ignore (Mailbox.recv mb)
                done));
         ignore
           (Proc.spawn eng (fun () ->
                for i = 1 to 1000 do
                  Mailbox.send mb i
                done));
         ignore (Engine.run eng)))

let fig10_source = Fail_lang.Paper_scenarios.state_synchronized ~n_machines:53 ~period:50

let test_parse =
  Test.make ~name:"micro:parse-fig10"
    (Staged.stage (fun () -> ignore (Fail_lang.Parser.parse fig10_source)))

let test_compile =
  Test.make ~name:"micro:compile-fig10"
    (Staged.stage (fun () ->
         match Fail_lang.Compile.compile_source fig10_source with
         | Ok _ -> ()
         | Error msg -> failwith msg))

let test_reference =
  Test.make ~name:"micro:bt49-reference-checksum"
    (Staged.stage (fun () ->
         ignore (Workload.Bt_model.reference_checksum Workload.Bt_model.B ~n_ranks:49)))

let test_rng =
  Test.make ~name:"micro:rng-1k-draws"
    (Staged.stage (fun () ->
         let rng = Simkern.Rng.create 1L in
         for _ = 1 to 1000 do
           ignore (Simkern.Rng.int rng 53)
         done))

let benchmark () =
  let tests =
    [
      test_table1;
      test_fig5_cycle;
      test_fig6_cycle;
      test_fig7_cycle;
      test_fig9_cycle;
      test_fig11_cycle;
      test_replication_cycle;
      test_replication_failover_cycle;
      test_engine_events;
      test_mailbox_throughput;
      test_parse;
      test_compile;
      test_reference;
      test_rng;
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  Printf.printf "%-32s %14s %10s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ estimate ] ->
              let pretty =
                if estimate > 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
                else if estimate > 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
                else if estimate > 1e3 then Printf.sprintf "%.2f us" (estimate /. 1e3)
                else Printf.sprintf "%.0f ns" estimate
              in
              Printf.printf "%-32s %14s %10s\n%!" name pretty
                (match Analyze.OLS.r_square ols_result with
                | Some r2 -> Printf.sprintf "%.3f" r2
                | None -> "-")
          | Some _ | None -> Printf.printf "%-32s %14s\n%!" name "-")
        analysis)
    tests

(* ------------------------------------------------------------------ *)
(* Figure regeneration *)

let figures full =
  let sep title = Printf.printf "\n================ %s ================\n\n%!" title in
  sep "Table (2.1)";
  print_string (Fail_lang.Tool_comparison.render ());
  let pick quick normal = if full then normal else quick in
  sep "Figure 5";
  print_string
    (Experiments.Fig_frequency.render
       (Experiments.Fig_frequency.run
          ~config:
            (pick Experiments.Fig_frequency.quick_config
               Experiments.Fig_frequency.default_config)
          ()));
  sep "Figure 6";
  print_string
    (Experiments.Fig_scale.render
       (Experiments.Fig_scale.run
          ~config:(pick Experiments.Fig_scale.quick_config Experiments.Fig_scale.default_config)
          ()));
  sep "Figure 7";
  print_string
    (Experiments.Fig_simultaneous.render
       (Experiments.Fig_simultaneous.run
          ~config:
            (pick Experiments.Fig_simultaneous.quick_config
               Experiments.Fig_simultaneous.default_config)
          ()));
  sep "Figure 9";
  print_string
    (Experiments.Fig_synchronized.render
       (Experiments.Fig_synchronized.run
          ~config:
            (pick Experiments.Fig_synchronized.quick_config
               Experiments.Fig_synchronized.default_config)
          ()));
  sep "Figure 11";
  print_string
    (Experiments.Fig_state_sync.render
       (Experiments.Fig_state_sync.run
          ~config:
            (pick Experiments.Fig_state_sync.quick_config
               Experiments.Fig_state_sync.default_config)
          ()));
  sep "Ablations";
  let reps = if full then 9 else 3 in
  let n_ranks = if full then 49 else 25 in
  print_string
    (Experiments.Ablations.render_dispatcher_fix
       (Experiments.Ablations.dispatcher_fix ~reps ~n_ranks ()));
  print_newline ();
  print_string
    (Experiments.Ablations.render_protocol_overhead
       (Experiments.Ablations.protocol_overhead ~n_ranks ()));
  print_newline ();
  print_string
    (Experiments.Ablations.render_wave_interval
       (Experiments.Ablations.wave_interval ~reps:(if full then 4 else 2) ~n_ranks ()));
  print_newline ();
  print_string
    (Experiments.Ablations.render_protocol_comparison
       (Experiments.Ablations.protocol_comparison ~reps:(if full then 4 else 2) ~n_ranks ()));
  sep "Protocol families";
  print_string
    (Experiments.Protocol_families.render
       (Experiments.Protocol_families.run
          ~config:
            (pick Experiments.Protocol_families.quick_config
               Experiments.Protocol_families.default_config)
          ()));
  sep "Planned feature (delay after wave)";
  print_string
    (Experiments.Delay_experiment.render
       (Experiments.Delay_experiment.run
          ~n_ranks:(if full then 49 else 25)
          ~reps:(if full then 3 else 1)
          ()))

let () =
  let full =
    match Sys.getenv_opt "FAILMPI_BENCH_FULL" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false
  in
  print_endline "=== Bechamel micro-benchmarks (one per table/figure + substrate) ===\n";
  benchmark ();
  figures full;
  Printf.printf "\n(%s mode; set FAILMPI_BENCH_FULL=1 for the paper-sized campaign)\n"
    (if full then "full" else "quick")
