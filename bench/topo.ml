(* Topology benchmark, written to BENCH_topo.json (CI runs this as a
   smoke step on every build).

   Part 1 — the no-geometry guarantee, priced: the same fixed-seed BT
   run with no declared topology vs a flat mesh vs a 4-ary fat tree,
   all unperturbed. Routing is only consulted when a component fault
   resolves, so the three must agree on every observable (outcome,
   time, faults, checksums, counters) — the bench refuses to report a
   timing otherwise — and the wall-time cost of carrying the declared
   fabric is reported against a 2% budget. The flat-mesh cell is also
   replayed through the parallel harness at --jobs 1 and --jobs 4 and
   compared observable-for-observable, pinning seed determinism.

   Part 2 — the blast radius, priced: one fixed-seed replication run
   per fat-tree component fault (edge / aggregation / core switch
   kill, pod degrade), recording wall time, the verdict and the fabric
   counters. The simulated-time companion is `failmpi_experiments
   topo`. *)

module S = Fail_lang.Codegen.Scenario

let klass = Workload.Bt_model.A
let n_ranks = 4
let k = 4
let n_machines = k * k * k / 4
let reps = 10

let run ?topology ?scenario ~seed () =
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.protocol = Mpivcl.Config.Replication { degree = 2 };
      topology;
    }
  in
  Experiments.Harness.run_bt ~cfg ~klass ~n_ranks ~n_machines ~scenario ~seed ()

let observables (r : Failmpi.Run.result) =
  ( (match r.Failmpi.Run.outcome with
    | Failmpi.Run.Completed t -> Printf.sprintf "completed:%.6f" t
    | o -> Failmpi.Run.outcome_name o),
    r.Failmpi.Run.injected_faults,
    r.Failmpi.Run.checksums,
    Failmpi.Backend.Metrics.counters r.Failmpi.Run.metrics )

(* Mean wall seconds of [reps] fixed-seed runs (seeds 1..reps). *)
let time_runs ?topology () =
  let t0 = Unix.gettimeofday () in
  let results =
    List.init reps (fun i -> observables (run ?topology ~seed:(Int64.of_int (i + 1)) ()))
  in
  ((Unix.gettimeofday () -. t0) /. float_of_int reps, results)

let counter r name =
  Option.value ~default:0 (Failmpi.Backend.Metrics.find r.Failmpi.Run.metrics name)

let () =
  let out = match Sys.argv with [| _; path |] -> path | _ -> "BENCH_topo.json" in
  let buf = Buffer.create 2048 in

  Printf.printf "no-geometry overhead: none vs flat vs fat-tree:%d (%d runs each)...\n%!" k
    reps;
  let t_plain, obs_plain = time_runs () in
  let t_flat, obs_flat = time_runs ~topology:Simtopo.Topo.Flat () in
  let t_tree, obs_tree = time_runs ~topology:(Simtopo.Topo.Fat_tree { k }) () in
  if obs_plain <> obs_flat then (
    prerr_endline "topo bench: flat mesh diverged from the no-topology path";
    exit 1);
  if obs_plain <> obs_tree then (
    prerr_endline "topo bench: unperturbed fat tree diverged from the no-topology path";
    exit 1);

  Printf.printf "flat-mesh determinism across --jobs...\n%!";
  let replicate jobs =
    Experiments.Harness.replicate ~jobs ~reps ~base_seed:1 (fun ~seed ->
        run ~topology:Simtopo.Topo.Flat ~seed ())
    |> List.map observables
  in
  if replicate 1 <> replicate 4 then (
    prerr_endline "topo bench: flat-mesh run diverged between --jobs 1 and --jobs 4";
    exit 1);

  let overhead_pct = (t_tree -. t_plain) /. t_plain *. 100.0 in
  Buffer.add_string buf "{\n  \"no_geometry\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"plain_ms\": %.3f,\n\
       \    \"flat_ms\": %.3f,\n\
       \    \"fat_tree_ms\": %.3f,\n\
       \    \"overhead_pct\": %.2f,\n\
       \    \"within_2pct\": %b,\n\
       \    \"observables_identical\": true,\n\
       \    \"jobs_deterministic\": true\n\
       \  },\n"
       (t_plain *. 1e3) (t_flat *. 1e3) (t_tree *. 1e3)
       overhead_pct
       (overhead_pct <= 2.0));

  Buffer.add_string buf "  \"component_faults\": [\n";
  let faults =
    [
      ("edge_switch_kill", S.Switch_kill { tier = Fail_lang.Ast.Tier_edge });
      ("agg_switch_kill", S.Switch_kill { tier = Fail_lang.Ast.Tier_agg });
      ("core_switch_kill", S.Switch_kill { tier = Fail_lang.Ast.Tier_core });
      ("pod_degrade", S.Pod_degrade { loss = 300; latency = 5 });
    ]
  in
  List.iteri
    (fun i (name, kind) ->
      Printf.printf "component fault: %s...\n%!" name;
      let scenario = S.source ~n_machines [ { S.machine = 0; anchor = S.After 20; kind } ] in
      let t0 = Unix.gettimeofday () in
      let r = run ~topology:(Simtopo.Topo.Fat_tree { k }) ~scenario ~seed:1L () in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"fault\": %S, \"wall_time_ms\": %.3f,\n\
           \      \"outcome\": %S, \"sim_time_s\": %s,\n\
           \      \"net_dropped\": %d, \"net_retransmits\": %d,\n\
           \      \"checksum_ok\": %b }%s\n"
           name wall_ms
           (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
           (match r.Failmpi.Run.outcome with
           | Failmpi.Run.Completed t -> Printf.sprintf "%.1f" t
           | _ -> "null")
           (counter r "net_dropped") (counter r "net_retransmits")
           (r.Failmpi.Run.checksum_ok <> Some false)
           (if i = List.length faults - 1 then "" else ",")))
    faults;
  Buffer.add_string buf "  ]\n}\n";

  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s (fabric overhead %.2f%%, %d component faults)\n" out overhead_pct
    (List.length faults)
