(* Network perturbation benchmark, written to BENCH_netfault.json (CI
   runs this as a smoke step on every build).

   Part 1 — the pristine-path guarantee, priced: the same fixed-seed
   BT run timed with no perturbation profile vs an applied-but-all-zero
   profile. The two must agree on every observable (outcome, time,
   faults, checksums, counters) — the bench refuses to report a timing
   otherwise — and the wall-time overhead of carrying the (untouched)
   layer is reported against a 2% budget.

   Part 2 — the cost of surviving loss: one fixed-seed run per
   (backend x loss level), recording wall time, simulated completion
   time, the fabric counters and the verdict. This is the wall-clock
   companion of `failmpi_experiments netfault`, which sweeps the same
   grid for simulated-time figures. *)

let klass = Workload.Bt_model.A
let n_ranks = 4
let n_machines = Experiments.Harness.machines_for n_ranks
let reps = 5
let loss_levels = [ 0.0; 0.02; 0.05; 0.10 ]

let run ?net ?protocol ~seed () =
  let cfg =
    let base = Mpivcl.Config.default ~n_ranks in
    {
      base with
      Mpivcl.Config.protocol =
        (match protocol with Some p -> p | None -> base.Mpivcl.Config.protocol);
      net;
    }
  in
  Experiments.Harness.run_bt ~cfg ~klass ~n_ranks ~n_machines ~scenario:None ~seed ()

let observables (r : Failmpi.Run.result) =
  ( (match r.Failmpi.Run.outcome with
    | Failmpi.Run.Completed t -> Printf.sprintf "completed:%.6f" t
    | o -> Failmpi.Run.outcome_name o),
    r.Failmpi.Run.injected_faults,
    r.Failmpi.Run.checksums,
    Failmpi.Backend.Metrics.counters r.Failmpi.Run.metrics )

(* Mean wall seconds of [reps] fixed-seed runs (seeds 1..reps). *)
let time_runs ?net () =
  let t0 = Unix.gettimeofday () in
  let results =
    List.init reps (fun i -> observables (run ?net ~seed:(Int64.of_int (i + 1)) ()))
  in
  ((Unix.gettimeofday () -. t0) /. float_of_int reps, results)

let zero_profile = Simnet.Net.Perturb.default_profile

let profile_of loss =
  if loss = 0.0 then None
  else
    Some
      {
        Simnet.Net.Perturb.default_profile with
        Simnet.Net.Perturb.base =
          { Simnet.Net.Perturb.loss; latency = 0.0; jitter = 0.0 };
      }

let counter r name =
  Option.value ~default:0 (Failmpi.Backend.Metrics.find r.Failmpi.Run.metrics name)

let () =
  let out = match Sys.argv with [| _; path |] -> path | _ -> "BENCH_netfault.json" in
  let buf = Buffer.create 2048 in

  Printf.printf "perturb-off overhead: none vs zero profile (%d runs each)...\n%!" reps;
  let t_plain, obs_plain = time_runs () in
  let t_zero, obs_zero = time_runs ~net:zero_profile () in
  if obs_plain <> obs_zero then (
    prerr_endline "netfault bench: zero profile diverged from the pristine path";
    exit 1);
  let overhead_pct = (t_zero -. t_plain) /. t_plain *. 100.0 in
  Buffer.add_string buf "{\n  \"perturb_off\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"plain_ms\": %.3f,\n\
       \    \"zero_profile_ms\": %.3f,\n\
       \    \"overhead_pct\": %.2f,\n\
       \    \"within_2pct\": %b,\n\
       \    \"observables_identical\": true\n\
       \  },\n"
       (t_plain *. 1e3) (t_zero *. 1e3) overhead_pct
       (overhead_pct <= 2.0));

  Buffer.add_string buf "  \"loss_curve\": [\n";
  let backends = Failmpi.Backend.all () in
  let cells =
    List.concat_map
      (fun b -> List.map (fun loss -> (b, loss)) loss_levels)
      backends
  in
  List.iteri
    (fun i ((module B : Failmpi.Backend.S), loss) ->
      Printf.printf "loss curve: %s at %g%%...\n%!" B.name (loss *. 100.0);
      let t0 = Unix.gettimeofday () in
      let r = run ?net:(profile_of loss) ~protocol:(B.protocol ~replicas:2) ~seed:1L () in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"backend\": %S, \"loss\": %.2f, \"wall_time_ms\": %.3f,\n\
           \      \"outcome\": %S, \"sim_time_s\": %s,\n\
           \      \"net_dropped\": %d, \"net_retransmits\": %d,\n\
           \      \"checksum_ok\": %b }%s\n"
           B.name loss wall_ms
           (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
           (match r.Failmpi.Run.outcome with
           | Failmpi.Run.Completed t -> Printf.sprintf "%.1f" t
           | _ -> "null")
           (counter r "net_dropped") (counter r "net_retransmits")
           (r.Failmpi.Run.checksum_ok <> Some false)
           (if i = List.length cells - 1 then "" else ",")))
    cells;
  Buffer.add_string buf "  ]\n}\n";

  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s (overhead %.2f%%, %d loss-curve cells)\n" out overhead_pct
    (List.length cells)
