(* Campaign parallelism + trace-overhead benchmark, written to
   BENCH_campaign.json (CI runs this as a smoke step on every build).

   Part 1 — the same mini-campaign (a BT-9 fault-frequency sweep) timed
   at 1, 2 and 4 domains through Harness.campaign. The results of every
   variant are checked identical to the sequential run before any
   timing is reported: a speedup obtained by diverging is a bug, not a
   win. The JSON records the machine's core count, so a 1-core CI
   runner showing speedup 1.0 is honest rather than a regression.

   Part 2 — the simulator hot path: one fixed-seed run traced at Full
   vs Summary level, reporting wall time, allocated bytes and retained
   trace entries for each. Summary formats and retains strictly less
   (the entry count drops several-fold); the simulation itself must be
   bit-identical under both levels. *)

let cores = Domain.recommended_domain_count ()

let reps = 6
let klass = Workload.Bt_model.A
let n_ranks = 9
let n_machines = Experiments.Harness.machines_for n_ranks

let scenario =
  Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:25)

let cells ~trace_level =
  [
    Experiments.Harness.cell ~tag:"bt-faulty" ~reps ~base_seed:500 (fun ~seed ->
        Experiments.Harness.run_bt ~trace_level ~klass ~n_ranks ~n_machines ~scenario
          ~seed ());
    Experiments.Harness.cell ~tag:"bt-clean" ~reps ~base_seed:900 (fun ~seed ->
        Experiments.Harness.run_bt ~trace_level ~klass ~n_ranks ~n_machines
          ~scenario:None ~seed ());
  ]

let fingerprint results =
  List.map
    (fun (tag, rs) ->
      ( tag,
        List.map
          (fun (r : Failmpi.Run.result) ->
            ( (match r.Failmpi.Run.outcome with
              | Failmpi.Run.Completed t -> Printf.sprintf "completed:%.6f" t
              | o -> Failmpi.Run.outcome_name o),
              r.Failmpi.Run.injected_faults,
              r.Failmpi.Run.checksums,
              r.Failmpi.Run.checksum_ok ))
          rs ))
    results

let time_campaign ~jobs =
  let t0 = Unix.gettimeofday () in
  let results = Experiments.Harness.campaign ~jobs (cells ~trace_level:Simkern.Trace.Summary) in
  (Unix.gettimeofday () -. t0, fingerprint results)

let time_one_run ~trace_level =
  let before = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let r =
    Experiments.Harness.run_bt ~trace_level ~klass ~n_ranks ~n_machines ~scenario
      ~seed:500L ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let allocated = Gc.allocated_bytes () -. before in
  (wall, allocated, Simkern.Trace.length r.Failmpi.Run.trace, r)

let () =
  let out =
    match Sys.argv with [| _; path |] -> path | _ -> "BENCH_campaign.json"
  in
  let job_counts = [ 1; 2; 4 ] in
  Printf.printf "campaign benchmark: %d cores available\n%!" cores;
  let timings =
    List.map
      (fun jobs ->
        Printf.printf "campaign at --jobs %d...\n%!" jobs;
        let wall, fp = time_campaign ~jobs in
        (jobs, wall, fp))
      job_counts
  in
  let _, seq_wall, seq_fp = List.hd timings in
  List.iter
    (fun (jobs, _, fp) ->
      if fp <> seq_fp then begin
        Printf.eprintf "FATAL: --jobs %d diverged from the sequential campaign\n" jobs;
        exit 1
      end)
    timings;
  Printf.printf "trace overhead: Full vs Summary...\n%!";
  let full_wall, full_alloc, full_entries, full_r =
    time_one_run ~trace_level:Simkern.Trace.Full
  in
  let summ_wall, summ_alloc, summ_entries, summ_r =
    time_one_run ~trace_level:Simkern.Trace.Summary
  in
  if
    full_r.Failmpi.Run.outcome <> summ_r.Failmpi.Run.outcome
    || full_r.Failmpi.Run.injected_faults <> summ_r.Failmpi.Run.injected_faults
    || full_r.Failmpi.Run.checksums <> summ_r.Failmpi.Run.checksums
  then begin
    Printf.eprintf "FATAL: trace level changed the simulation\n";
    exit 1
  end;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string buf
    (Printf.sprintf "  \"campaign_runs\": %d,\n" (List.length (cells ~trace_level:Simkern.Trace.Summary) * reps));
  Buffer.add_string buf "  \"campaign\": [\n";
  List.iteri
    (fun i (jobs, wall, _) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"jobs\": %d, \"wall_time_s\": %.3f, \"speedup\": %.2f }%s\n" jobs wall
           (seq_wall /. wall)
           (if i = List.length timings - 1 then "" else ",")))
    timings;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"trace_overhead\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"full\":    { \"wall_time_s\": %.3f, \"allocated_mb\": %.1f, \"trace_entries\": %d },\n"
       full_wall (full_alloc /. 1e6) full_entries);
  Buffer.add_string buf
    (Printf.sprintf
       "    \"summary\": { \"wall_time_s\": %.3f, \"allocated_mb\": %.1f, \"trace_entries\": %d },\n"
       summ_wall (summ_alloc /. 1e6) summ_entries);
  Buffer.add_string buf
    (Printf.sprintf "    \"entry_ratio\": %.2f\n"
       (if summ_entries > 0 then float_of_int full_entries /. float_of_int summ_entries
        else nan));
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  List.iter
    (fun (jobs, wall, _) ->
      Printf.printf "  jobs %d: %.2f s (speedup %.2fx)\n" jobs wall (seq_wall /. wall))
    timings;
  Printf.printf "  trace Full: %.2f s / %.0f MB / %d entries  Summary: %.2f s / %.0f MB / %d entries\n"
    full_wall (full_alloc /. 1e6) full_entries summ_wall (summ_alloc /. 1e6) summ_entries;
  Printf.printf "wrote %s\n" out
