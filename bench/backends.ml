(* Per-backend wall-time benchmark: one small faulty experiment cycle
   per registered protocol backend, measured with bechamel, written to
   BENCH_backends.json (CI runs this as a smoke step on every build).

   The workload is identical across backends — a 4-rank stencil under
   the fault-frequency scenario — so the JSON is a like-for-like
   comparison of what each protocol costs the simulator. Only the
   cluster size differs (each backend's own default_machines). *)

open Bechamel
open Toolkit

let replicas = 2

let small_params =
  { Workload.Stencil.iterations = 30; compute_time = 0.4; msg_bytes = 4_000; jitter = 0.0 }

let small_run (module B : Failmpi.Backend.S) ~seed () =
  let n_ranks = 4 in
  let n_machines = B.default_machines ~n_ranks ~replicas in
  let app = Workload.Stencil.app small_params ~n_ranks in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.protocol = B.protocol ~replicas;
      wave_interval = 5.0;
      term_straggler_prob = 0.0;
    }
  in
  let spec =
    {
      (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes:500_000) with
      Failmpi.Run.scenario = Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:10);
      seed;
      timeout = 120.0;
    }
  in
  Failmpi.Run.execute spec

(* nanoseconds per run, OLS estimate over the monotonic clock *)
let measure (module B : Failmpi.Backend.S) =
  let test =
    Test.make
      ~name:(Printf.sprintf "backend:%s" B.name)
      (Staged.stage (fun () -> ignore (small_run (module B) ~seed:1L ())))
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let results = Benchmark.all cfg [ instance ] test in
  let analysis = Analyze.all ols instance results in
  let found = ref None in
  Hashtbl.iter
    (fun _name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ estimate ] -> found := Some (estimate, Analyze.OLS.r_square ols_result)
      | Some _ | None -> ())
    analysis;
  !found

let json_field buf ~last (module B : Failmpi.Backend.S) =
  let r = small_run (module B) ~seed:1L () in
  let ns, r2 =
    match measure (module B) with
    | Some (ns, r2) -> (ns, r2)
    | None -> (nan, None)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  { \"backend\": %S,\n\
       \    \"label\": %S,\n\
       \    \"wall_time_ms\": %.3f,\n\
       \    \"r_square\": %s,\n\
       \    \"outcome\": %S,\n\
       \    \"injected_faults\": %d,\n\
       \    \"checksum_ok\": %b }%s\n"
       B.name
       (B.family_label ~replicas)
       (ns /. 1e6)
       (match r2 with Some r2 -> Printf.sprintf "%.3f" r2 | None -> "null")
       (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
       r.Failmpi.Run.injected_faults
       (r.Failmpi.Run.checksum_ok <> Some false)
       (if last then "" else ","))

let () =
  let out =
    match Sys.argv with [| _; path |] -> path | _ -> "BENCH_backends.json"
  in
  let backends = Failmpi.Backend.all () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i b ->
      let (module B : Failmpi.Backend.S) = b in
      Printf.printf "benchmarking %s...\n%!" B.name;
      json_field buf ~last:(i = List.length backends - 1) b)
    backends;
  Buffer.add_string buf "]\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s (%d backends)\n" out (List.length backends)
