(* Core-scaling benchmark, written to BENCH_scale.json (CI runs a
   bounded variant as a smoke step and uploads the artifact).

   One fixed-seed, fault-free stencil run per cluster size on the
   hosts-vs-wallclock curve 256 -> 8192, timed twice: once with the
   engine forced to a single event region (the pre-sharding layout) and
   once with the auto-sized region count [Engine.recommended_regions]
   picks. Region placement is purely structural — the two runs must
   agree on every observable (outcome, simulated time, checksums,
   backend counters) and the bench refuses to report timings otherwise,
   making the curve double as a large-scale determinism check.

   Usage: scale.exe [OUT.json [MAX_HOSTS]] — CI passes a small
   MAX_HOSTS to bound the smoke run; the full curve is the default. *)

let hosts_curve = [ 256; 512; 1024; 2048; 4096; 8192 ]

(* Service hosts the vcl layout adds on top of the compute pool:
   coordinator, dispatcher, scheduler, 3 checkpoint servers. *)
let service_hosts = 6

let isqrt n =
  let rec find i = if i * i > n then i - 1 else find (i + 1) in
  find 1

(* A short stencil: enough iterations for the neighbour exchange to
   dominate, few enough that the 8192-host point stays a bench, not a
   campaign. *)
let params =
  { Workload.Stencil.iterations = 10; compute_time = 0.5; msg_bytes = 10_000; jitter = 0.0 }

let spec_for ~hosts ~regions =
  let n_compute = hosts - service_hosts in
  let side = isqrt n_compute in
  let n_ranks = side * side in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.wave_interval = 20.0;
      init_delay_min = 0.1;
      init_delay_max = 0.1;
      term_straggler_prob = 0.0;
      store_jitter = 0.0;
      (* The historical eager all-to-all daemon mesh is quadratic; the
         stencil only talks to grid neighbours, so connect on demand. *)
      lazy_peer_mesh = true;
    }
  in
  let app = Workload.Stencil.app params ~n_ranks in
  ( n_ranks,
    {
      (Failmpi.Run.default_spec ~app ~cfg ~n_compute ~state_bytes:100_000) with
      Failmpi.Run.timeout = 600.0;
      trace_level = Simkern.Trace.Summary;
      regions;
    } )

let observables (r : Failmpi.Run.result) =
  ( (match r.Failmpi.Run.outcome with
    | Failmpi.Run.Completed t -> Printf.sprintf "completed:%.6f" t
    | o -> Failmpi.Run.outcome_name o),
    r.Failmpi.Run.injected_faults,
    r.Failmpi.Run.checksums,
    Failmpi.Backend.Metrics.counters r.Failmpi.Run.metrics )

let timed ~hosts ~regions =
  let n_ranks, spec = spec_for ~hosts ~regions in
  let t0 = Unix.gettimeofday () in
  let r = Failmpi.Run.execute spec in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  (n_ranks, wall_ms, r)

let () =
  let out, max_hosts =
    match Sys.argv with
    | [| _; path; cap |] -> (path, int_of_string cap)
    | [| _; path |] -> (path, max_int)
    | _ -> ("BENCH_scale.json", max_int)
  in
  let curve = List.filter (fun h -> h <= max_hosts) hosts_curve in
  if curve = [] then begin
    prerr_endline "scale bench: MAX_HOSTS below the smallest curve point";
    exit 1
  end;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n\
       \  \"workload\": \"stencil, %d iterations, fault-free, non-blocking vcl\",\n\
       \  \"curve\": [\n"
       params.Workload.Stencil.iterations);
  List.iteri
    (fun i hosts ->
      let auto = Simkern.Engine.recommended_regions ~hosts in
      Printf.printf "scale: %d hosts (regions 1 vs %d)...\n%!" hosts auto;
      let n_ranks, ms_one, r_one = timed ~hosts ~regions:(Some 1) in
      let _, ms_auto, r_auto = timed ~hosts ~regions:None in
      if observables r_one <> observables r_auto then begin
        Printf.eprintf
          "scale bench: %d hosts: auto-region run diverged from single-region run\n"
          hosts;
        exit 1
      end;
      let sim_time =
        match r_one.Failmpi.Run.outcome with
        | Failmpi.Run.Completed t -> Printf.sprintf "%.1f" t
        | _ -> "null"
      in
      (match r_one.Failmpi.Run.outcome with
      | Failmpi.Run.Completed _ -> ()
      | o ->
          Printf.eprintf "scale bench: %d hosts did not complete (%s)\n" hosts
            (Failmpi.Run.outcome_name o);
          exit 1);
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"hosts\": %d, \"ranks\": %d, \"auto_regions\": %d,\n\
           \      \"wall_ms_regions1\": %.1f, \"wall_ms_auto\": %.1f,\n\
           \      \"sim_time_s\": %s, \"observables_identical\": true }%s\n"
           hosts n_ranks auto ms_one ms_auto sim_time
           (if i = List.length curve - 1 then "" else ",")))
    curve;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s (%d curve points)\n" out (List.length curve)
