(* Explorer throughput benchmark, written to BENCH_explore.json (CI
   runs a bounded variant as a smoke step and uploads the artifact).

   One campaign — a >= 3-fault sampled configuration over the demo
   stencil deployment — run twice with the same seed: once through the
   prefix-sharing fork scheduler, once replaying every plan from t = 0.
   The figure of merit is plans per CPU-hour ([Unix.times], children
   included, so every forked branch process is charged to its mode).
   The two reports must be byte-identical — coverage, records and
   witnesses — and the bench refuses to report throughput otherwise,
   making the speedup double as an end-to-end equivalence check.

   The fork campaign runs first: the OCaml runtime permanently refuses
   [Unix.fork] in a process that ever created a domain, and the replay
   campaign's [Par.map] creates them.

   Usage: explore_bench.exe [OUT.json [BUDGET]] — CI passes a small
   BUDGET to bound the smoke run; the full 500-plan campaign is the
   default. *)

let n_machines = 8

(* The test_explore demo deployment: a 60-iteration stencil under the
   non-blocking vcl protocol — fast, deterministic, and done in ~31 s
   simulated, so the 15/30/60 s buckets span a real prefix before the
   first fault and chains of later delays land in (or past) recovery. *)
let spec () =
  let n_ranks = 4 in
  let app =
    Workload.Stencil.app
      { Workload.Stencil.iterations = 60; compute_time = 0.5; msg_bytes = 5_000; jitter = 0.0 }
      ~n_ranks
  in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.protocol = Mpivcl.Config.Non_blocking;
      wave_interval = 10.0;
      term_straggler_prob = 0.0;
    }
  in
  {
    (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes:1_000_000) with
    Failmpi.Run.timeout = 300.0;
    seed = 1L;
  }

let config ~budget =
  {
    (Explore.default_config ~n_machines ~targets:[ 0; 1 ] ~buckets:[ 60; 30; 15 ]) with
    Explore.budget;
    max_faults = 4;
  }

(* Process + reaped-children CPU seconds.  Forked branch processes are
   waited on by their parents, so their time rolls up recursively;
   domain workers are threads of this process and count directly. *)
let cpu_s () =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_stime +. t.Unix.tms_cutime +. t.Unix.tms_cstime

let timed run =
  let c0 = cpu_s () and t0 = Unix.gettimeofday () in
  let r = run () in
  (r, cpu_s () -. c0, Unix.gettimeofday () -. t0)

let () =
  let out, budget =
    match Sys.argv with
    | [| _; path; budget |] -> (path, int_of_string budget)
    | [| _; path |] -> (path, 500)
    | _ -> ("BENCH_explore.json", 500)
  in
  if budget < 1 then begin
    prerr_endline "explore bench: BUDGET must be >= 1";
    exit 1
  end;
  let cfg = config ~budget and spec = spec () in
  let jobs = min 4 (Par.default_jobs ()) in
  Printf.printf "explore bench: %d-plan campaign, %d jobs, fork scheduler...\n%!" budget jobs;
  let (rep_fork, stats), fork_cpu, fork_wall =
    timed (fun () -> Explore.run_spec ~jobs ~fork:true ~measure:true cfg ~spec)
  in
  Printf.printf "explore bench: same campaign, replay from zero...\n%!";
  let (rep_replay, _), replay_cpu, replay_wall =
    timed (fun () -> Explore.run_spec ~jobs ~fork:false cfg ~spec)
  in
  let json_fork = Explore.to_json rep_fork and json_replay = Explore.to_json rep_replay in
  if json_fork <> json_replay then begin
    Printf.eprintf
      "explore bench: fork and replay reports diverged — refusing to report throughput\n";
    exit 1
  end;
  let explored = List.length rep_fork.Explore.records in
  let per_hour cpu = float_of_int explored /. (Float.max cpu 1e-6 /. 3600.0) in
  let fork_rate = per_hour fork_cpu and replay_rate = per_hour replay_cpu in
  let f = stats.Explore.Prefix.forks in
  let fork_latency_ms =
    if f = 0 then 0.0 else stats.Explore.Prefix.fork_wall_s /. float_of_int f *. 1e3
  in
  let int_list l = "[" ^ String.concat ", " (List.map string_of_int l) ^ "]" in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n\
       \  \"workload\": \"stencil, 60 iterations, non-blocking vcl, %d machines\",\n\
       \  \"config\": { \"targets\": %s, \"buckets\": %s, \"max_faults\": %d, \
        \"budget\": %d, \"jobs\": %d },\n\
       \  \"explored\": %d,\n\
       \  \"coverage_signatures\": %d,\n\
       \  \"reports_byte_identical\": true,\n\
       \  \"replay\": { \"cpu_s\": %.2f, \"wall_s\": %.2f, \"plans_per_cpu_hour\": %.0f },\n\
       \  \"fork\": { \"cpu_s\": %.2f, \"wall_s\": %.2f, \"plans_per_cpu_hour\": %.0f,\n\
       \    \"forks\": %d, \"pauses\": %d, \"fork_latency_ms\": %.3f,\n\
       \    \"snapshot_events_max\": %d, \"snapshot_bytes_max\": %d },\n\
       \  \"speedup_plans_per_cpu_hour\": %.2f\n\
        }\n"
       n_machines (int_list cfg.Explore.targets) (int_list cfg.Explore.buckets)
       cfg.Explore.max_faults budget jobs explored
       (List.length rep_fork.Explore.coverage)
       replay_cpu replay_wall replay_rate fork_cpu fork_wall fork_rate f
       stats.Explore.Prefix.pauses fork_latency_ms stats.Explore.Prefix.snapshot_events_max
       (stats.Explore.Prefix.snapshot_words_max * (Sys.word_size / 8))
       (fork_rate /. Float.max replay_rate 1e-6));
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "wrote %s: %.0f plans/cpu-hour forked vs %.0f replayed (%.2fx), %d forks, %d pauses\n" out
    fork_rate replay_rate
    (fork_rate /. Float.max replay_rate 1e-6)
    f stats.Explore.Prefix.pauses
