(* Checkpoint storage plane benchmark, written to BENCH_ckpt.json (CI
   runs this as a smoke step on every build).

   Part 1 — the replication-off guarantee, priced: the same fixed-seed
   BT runs at --ckpt-replicas 1 (the historical single-copy plane) vs
   --ckpt-replicas 2. Failure-free the mirror traffic must be invisible
   to the application — identical outcome, completion time, fault count
   and checksums; the bench refuses to report a timing otherwise.
   (Storage-plane counters like committed_waves may differ: mirrored
   stores take longer, so fewer tail waves seal before completion.)
   The wall-time overhead of mirroring every store is reported against
   a 5% budget.

   Part 2 — store/fetch latency vs replica count, micro: a single
   client against a fresh storage plane, timing (in simulated seconds)
   the store ack with and without a mirror in the loop, and the fetch
   round trip.

   Part 3 — recovery time with and without failover: a rank kill whose
   recovery reads from its healthy primary vs the same kill after the
   primary was shot (`halt service ckpt[1]`), forcing the fetch ladder
   onto the mirror. The wall-clock companion of
   `failmpi_experiments ckptfault`. *)

let klass = Workload.Bt_model.A
let n_ranks = 4
let n_machines = Experiments.Harness.machines_for n_ranks
let reps = 5

let run ?scenario ~ckpt_replicas ~seed () =
  let cfg =
    { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.ckpt_replicas }
  in
  Experiments.Harness.run_bt ~cfg ~klass ~n_ranks ~n_machines ~scenario ~seed ()

let observables (r : Failmpi.Run.result) =
  ( (match r.Failmpi.Run.outcome with
    | Failmpi.Run.Completed t -> Printf.sprintf "completed:%.6f" t
    | o -> Failmpi.Run.outcome_name o),
    r.Failmpi.Run.injected_faults,
    r.Failmpi.Run.checksums )

let time_runs ~ckpt_replicas () =
  let t0 = Unix.gettimeofday () in
  let results =
    List.init reps (fun i ->
        observables (run ~ckpt_replicas ~seed:(Int64.of_int (i + 1)) ()))
  in
  ((Unix.gettimeofday () -. t0) /. float_of_int reps, results)

(* ------------------------------------------------------------------ *)
(* Part 2: micro store/fetch against a bare storage plane *)

open Simkern
open Simos

let micro ~replicas =
  let eng = Engine.create () in
  let cluster = Cluster.create eng ~size:4 in
  let net = Simnet.Net.create eng () in
  let hosts = Array.init replicas (fun i -> i) in
  let servers =
    Array.to_list
      (Array.mapi
         (fun index host ->
           Mpivcl.Ckpt_server.spawn eng cluster net ~host ~bandwidth:1e8 ~index
             ~server_hosts:hosts ~replicas ())
         hosts)
  in
  let store_lat = ref nan and fetch_lat = ref nan in
  ignore
    (Cluster.spawn_on cluster ~host:3 ~name:"client" (fun () ->
         match
           Simnet.Net.connect net ~host:3 ~to_host:0
             ~to_port:Mpivcl.Config.server_port
         with
         | Error `Refused -> failwith "ckpt bench: server refused"
         | Ok conn ->
             let image =
               {
                 Mpivcl.Message.img_rank = 0;
                 img_wave = 1;
                 img_state = [| 1; 0; 0 |];
                 img_buffer = [];
                 img_redelivery = [];
                 img_logged = [];
                 img_seen = [];
                 img_received = [];
                 img_send_log = [];
                 img_next_ssn = [];
                 img_bytes = 10_000_000;
               }
             in
             let t0 = Engine.now eng in
             ignore (Simnet.Net.send conn (Mpivcl.Message.Store { image }));
             (match Simnet.Net.recv conn with
             | Simnet.Net.Data (Mpivcl.Message.Store_done _) ->
                 store_lat := Engine.now eng -. t0
             | _ -> failwith "ckpt bench: no store ack");
             ignore (Simnet.Net.send conn (Mpivcl.Message.Commit { wave = 1 }));
             Proc.sleep 0.1;
             let t1 = Engine.now eng in
             ignore
               (Simnet.Net.send conn
                  (Mpivcl.Message.Fetch { rank = 0; local_wave = None }));
             (match Simnet.Net.recv conn with
             | Simnet.Net.Data (Mpivcl.Message.Fetch_image { image = Some _ }) ->
                 fetch_lat := Engine.now eng -. t1
             | _ -> failwith "ckpt bench: no fetched image")));
  ignore (Engine.run ~until:60.0 eng);
  List.iter Mpivcl.Ckpt_server.halt servers;
  (!store_lat, !fetch_lat)

(* ------------------------------------------------------------------ *)
(* Part 3: recovery with a healthy primary vs via the failover ladder *)

module S = Fail_lang.Codegen.Scenario

let kill_only =
  S.source ~n_machines [ { S.machine = 1; anchor = S.After 40; kind = S.Kill } ]

let kill_after_primary_down =
  (* rank 1's primary is server 1 mod 3; shoot it, then the rank. *)
  S.source ~n_machines
    [
      { S.machine = 1; anchor = S.After 35; kind = S.Service_kill { service = S.S_ckpt 1 } };
      { S.machine = 1; anchor = S.After 5; kind = S.Kill };
    ]

let recovery_cell ~scenario ~ckpt_replicas =
  let t0 = Unix.gettimeofday () in
  let r = run ~scenario ~ckpt_replicas ~seed:1L () in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  (r, wall_ms)

let counter r name =
  Option.value ~default:0 (Failmpi.Backend.Metrics.find r.Failmpi.Run.metrics name)

let () =
  let out = match Sys.argv with [| _; path |] -> path | _ -> "BENCH_ckpt.json" in
  let buf = Buffer.create 2048 in

  Printf.printf "mirroring overhead: 1 vs 2 replicas, failure-free (%d runs each)...\n%!"
    reps;
  let t_single, obs_single = time_runs ~ckpt_replicas:1 () in
  let t_mirror, obs_mirror = time_runs ~ckpt_replicas:2 () in
  if obs_single <> obs_mirror then (
    prerr_endline "ckpt bench: failure-free mirroring changed an observable";
    exit 1);
  let overhead_pct = (t_mirror -. t_single) /. t_single *. 100.0 in
  Buffer.add_string buf "{\n  \"replication_off\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"single_copy_ms\": %.3f,\n\
       \    \"mirrored_ms\": %.3f,\n\
       \    \"overhead_pct\": %.2f,\n\
       \    \"within_5pct\": %b,\n\
       \    \"observables_identical\": true\n\
       \  },\n"
       (t_single *. 1e3) (t_mirror *. 1e3) overhead_pct
       (overhead_pct <= 5.0));

  Buffer.add_string buf "  \"store_fetch\": [\n";
  List.iteri
    (fun i replicas ->
      Printf.printf "micro store/fetch at %d replica(s)...\n%!" replicas;
      let store_s, fetch_s = micro ~replicas in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"replicas\": %d, \"store_sim_s\": %.4f, \"fetch_sim_s\": %.4f }%s\n"
           replicas store_s fetch_s
           (if i = 1 then "" else ",")))
    [ 1; 2 ];
  Buffer.add_string buf "  ],\n";

  Buffer.add_string buf "  \"recovery\": [\n";
  let cells =
    [
      ("healthy-primary", kill_only, 2);
      ("failover-to-mirror", kill_after_primary_down, 2);
      ("primary-lost-unmirrored", kill_after_primary_down, 1);
    ]
  in
  List.iteri
    (fun i (label, scenario, ckpt_replicas) ->
      Printf.printf "recovery: %s...\n%!" label;
      let r, wall_ms = recovery_cell ~scenario ~ckpt_replicas in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"case\": %S, \"ckpt_replicas\": %d, \"wall_time_ms\": %.3f,\n\
           \      \"outcome\": %S, \"sim_time_s\": %s,\n\
           \      \"recoveries\": %d, \"checksum_ok\": %b }%s\n"
           label ckpt_replicas wall_ms
           (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
           (match r.Failmpi.Run.outcome with
           | Failmpi.Run.Completed t -> Printf.sprintf "%.1f" t
           | _ -> "null")
           (counter r "recoveries")
           (r.Failmpi.Run.checksum_ok <> Some false)
           (if i = List.length cells - 1 then "" else ",")))
    cells;
  Buffer.add_string buf "  ]\n}\n";

  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s (mirroring overhead %.2f%%)\n" out overhead_pct
