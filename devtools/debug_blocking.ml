open Simkern
open Mpivcl

let () =
  let params = { Workload.Stencil.iterations = 30; compute_time = 0.5; msg_bytes = 10_000; jitter = 0.0 } in
  let cfg =
    {
      (Config.default ~n_ranks:4) with
      Config.wave_interval = 5.0;
      init_delay_min = 0.1;
      init_delay_max = 0.1;
      protocol = Config.Blocking;
    }
  in
  let eng = Engine.create ~seed:7L () in
  let app = Workload.Stencil.app params ~n_ranks:4 in
  let handle = Deploy.launch eng ~cfg ~app ~state_bytes:1_000_000 ~n_compute:6 () in
  let kill_rank rank =
    let cluster = Deploy.cluster handle in
    List.iter
      (fun (h : Simos.Cluster.host) ->
        List.iter
          (fun p ->
            let name = Proc.name p in
            if
              name = Printf.sprintf "vdaemon-%d" rank
              || name = Printf.sprintf "mpi-%d" rank
            then Proc.kill p)
          (Simos.Cluster.tasks cluster ~host:h.Simos.Cluster.host_id))
      (Simos.Cluster.hosts cluster)
  in
  ignore (Engine.schedule eng ~delay:9.0 (fun () -> kill_rank 1));
  let reason = Engine.run ~until:300.0 eng in
  Printf.printf "reason=%s outcome=%s now=%.1f\n"
    (match reason with
    | `Quiescent -> "quiescent"
    | `Deadline -> "deadline"
    | `Halted -> "halted"
    | `Breakpoint -> "breakpoint")
    (match Dispatcher.peek_outcome handle.Deploy.dispatcher with
    | Some (Dispatcher.Completed t) -> Printf.sprintf "completed %.1f" t
    | Some (Dispatcher.Aborted m) -> "aborted " ^ m
    | None -> "running")
    (Engine.now eng);
  let entries = Trace.entries (Engine.trace eng) in
  let n = List.length entries in
  List.iteri
    (fun i e -> if i >= n - 60 then Format.printf "%a@." Trace.pp_entry e)
    entries
