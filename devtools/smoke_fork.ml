(* Fork-vs-replay equivalence smoke: same config, byte-identical JSON. *)

let spec ~seeded =
  let n_ranks = 4 and n_machines = 8 in
  let app =
    Workload.Stencil.app
      { Workload.Stencil.iterations = 60; compute_time = 0.5; msg_bytes = 5_000; jitter = 0.0 }
      ~n_ranks
  in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.protocol = Mpivcl.Config.Non_blocking;
      wave_interval = 10.0;
      term_straggler_prob = 0.0;
      dispatcher_buggy = false;
      vcl_seeded_race = seeded;
    }
  in
  {
    (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes:1_000_000) with
    Failmpi.Run.timeout = 300.0;
    seed = 1L;
  }

let () =
  let cfg =
    {
      (Explore.default_config ~n_machines:8 ~targets:[ 0; 1; 2; 3 ] ~buckets:[ 25; 10 ]) with
      Explore.budget = 100;
      max_faults = 3;
    }
  in
  let spec = spec ~seeded:true in
  (* Fork first: the runtime refuses fork once Par has spawned domains. *)
  let rep_fork1, _ = Explore.run_spec ~jobs:1 ~fork:true cfg ~spec in
  let t0 = Unix.gettimeofday () in
  let rep_fork, st = Explore.run_spec ~jobs:4 ~fork:true cfg ~spec in
  let t1 = Unix.gettimeofday () in
  let rep_replay, _ = Explore.run_spec ~jobs:4 ~fork:false cfg ~spec in
  let t2 = Unix.gettimeofday () in
  let a = Explore.to_json rep_replay and b = Explore.to_json rep_fork in
  Printf.printf "fork %.2fs  replay %.2fs  forks=%d pauses=%d fork_wall=%.4fs\n"
    (t1 -. t0) (t2 -. t1) st.Explore.Prefix.forks st.Explore.Prefix.pauses
    st.Explore.Prefix.fork_wall_s;
  if Explore.to_json rep_fork1 <> b then begin
    print_endline "JOBS-1 DIVERGED";
    exit 1
  end;
  if a = b then print_endline "BYTE-IDENTICAL"
  else begin
    print_endline "DIVERGED";
    let oc = open_out "/tmp/replay.json" in
    output_string oc a;
    close_out oc;
    let oc = open_out "/tmp/fork.json" in
    output_string oc b;
    close_out oc;
    exit 1
  end
