(* golden_capture: print the reference behaviour of every protocol
   backend for the fixed-seed golden-equivalence tests
   (test/test_backend.ml). Run it on a known-good tree and paste the
   output into the test's expectation table whenever the goldens must be
   re-captured on purpose (e.g. an intentional protocol change):

     dune exec devtools/golden_capture.exe *)

let small_params =
  { Workload.Stencil.iterations = 60; compute_time = 0.5; msg_bytes = 5_000; jitter = 0.0 }

let spec ~protocol ~n_ranks ~n_machines ~scenario =
  let app = Workload.Stencil.app small_params ~n_ranks in
  let cfg =
    {
      (Mpivcl.Config.default ~n_ranks) with
      Mpivcl.Config.protocol;
      wave_interval = 10.0;
      term_straggler_prob = 0.0;
    }
  in
  {
    (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes:1_000_000) with
    Failmpi.Run.scenario = Some scenario;
    timeout = 400.0;
  }

let cases =
  let rollback protocol =
    spec ~protocol ~n_ranks:4 ~n_machines:8
      ~scenario:(Fail_lang.Paper_scenarios.frequency ~n_machines:8 ~period:15)
  in
  [
    ("vcl", rollback Mpivcl.Config.Non_blocking);
    ("blocking", rollback Mpivcl.Config.Blocking);
    ("v2", rollback Mpivcl.Config.Sender_logging);
    ( "replication",
      spec
        ~protocol:(Mpivcl.Config.Replication { degree = 2 })
        ~n_ranks:4 ~n_machines:10
        ~scenario:(Fail_lang.Paper_scenarios.frequency ~n_machines:10 ~period:15) );
  ]

let () =
  List.iter
    (fun (name, spec) ->
      List.iter
        (fun seed ->
          let r = Failmpi.Run.execute { spec with Failmpi.Run.seed } in
          let time =
            match r.Failmpi.Run.outcome with
            | Failmpi.Run.Completed t -> Printf.sprintf "%.6f" t
            | Failmpi.Run.Degraded { at; _ } -> Printf.sprintf "%.6f" at
            | Failmpi.Run.Aborted _ | Failmpi.Run.Ckpt_lost | Failmpi.Run.Non_terminating
            | Failmpi.Run.Buggy | Failmpi.Run.Net_hung ->
                "-"
          in
          Printf.printf "%s seed=%Ld outcome=%s time=%s faults=%d checksums=[%s]\n%!" name
            seed
            (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
            time r.Failmpi.Run.injected_faults
            (String.concat ";"
               (List.map
                  (fun (rank, v) -> Printf.sprintf "%d:%d" rank v)
                  r.Failmpi.Run.checksums)))
        [ 1L; 7L ])
    cases
