let () =
  let net =
    {
      Simnet.Net.Perturb.default_profile with
      Simnet.Net.Perturb.partition = Some ([ 0; 1 ], [ 2; 3 ]);
      heal_at = None;
    }
  in
  let cfg = { (Mpivcl.Config.default ~n_ranks:9) with Mpivcl.Config.net = Some net } in
  let r =
    Experiments.Harness.run_bt ~cfg ~klass:Workload.Bt_model.A ~n_ranks:9
      ~n_machines:13 ~scenario:None ~seed:1L ()
  in
  print_endline (Failmpi.Run.outcome_name r.Failmpi.Run.outcome);
  List.iter
    (fun e ->
      if e.Simkern.Trace.source = "ckpt-scheduler" then
        Printf.printf "%8.1f %s %s\n" e.Simkern.Trace.time e.Simkern.Trace.event
          e.Simkern.Trace.detail)
    (Simkern.Trace.entries r.Failmpi.Run.trace);
  Printf.printf "committed_waves: %d recoveries: %d confused: %b\n"
    r.Failmpi.Run.metrics.Failmpi.Backend.Metrics.committed_waves
    r.Failmpi.Run.metrics.Failmpi.Backend.Metrics.recoveries
    r.Failmpi.Run.metrics.Failmpi.Backend.Metrics.confused;
  List.iter
    (fun (k, v) -> Printf.printf "%s: %d\n" k v)
    r.Failmpi.Run.metrics.Failmpi.Backend.Metrics.extra
