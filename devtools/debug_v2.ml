let () =
  let n_ranks = 49 in
  let n_machines = Experiments.Harness.machines_for n_ranks in
  let cfg =
    { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.protocol = Mpivcl.Config.Sender_logging }
  in
  let scenario = Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:65) in
  let r =
    Experiments.Harness.run_bt ~cfg ~klass:Workload.Bt_model.B ~n_ranks ~n_machines ~scenario
      ~seed:1100L ()
  in
  Printf.printf "outcome=%s faults=%d recov=%d\n"
    (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
    r.Failmpi.Run.injected_faults (Failmpi.Run.recoveries r);
  let entries = Simkern.Trace.entries r.Failmpi.Run.trace in
  (* last interesting events *)
  let interesting =
    List.filter
      (fun e ->
        let open Simkern.Trace in
        List.mem e.event
          [ "halt"; "failure-detected"; "rank-resumed"; "resend"; "daemon-start"; "restored";
            "app-start"; "peer-connect-failed"; "resend-no-conn"; "spawn-failed"; "launch";
            "rank-registered"; "send-deferred"; "daemon-exit"; "rank-done"; "duplicate-dropped" ])
      entries
  in
  let n = List.length interesting in
  Printf.printf "interesting events: %d\n" n;
  (* resend bound evolution + per-fault timeline *)
  List.iter
    (fun e ->
      let open Simkern.Trace in
      if e.event = "halt" || e.event = "rank-resumed" then
        Format.printf "%a@." pp_entry e)
    entries;
  let count ev = Simkern.Trace.count r.Failmpi.Run.trace ~event:ev in
  Printf.printf "committed=%d skipped=%d local-ckpt=%d restored-events:\n"
    (count "checkpoint-committed") (count "checkpoint-skipped") (count "local-checkpoint");
  List.iter
    (fun e ->
      let open Simkern.Trace in
      if e.event = "restored" || (e.event = "checkpoint-committed" && e.source = "v2daemon-0")
      then Format.printf "%a@." pp_entry e)
    entries
