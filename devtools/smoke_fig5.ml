(* Full-scale smoke test: BT-49 class B under the Fig. 5 scenario. *)
let () =
  let n_ranks = 49 and n_machines = 53 in
  let klass = Workload.Bt_model.B in
  let app = Workload.Bt_model.app klass ~n_ranks in
  let cfg = Mpivcl.Config.default ~n_ranks in
  let state_bytes = Workload.Bt_model.state_bytes klass ~n_ranks in
  let expected = Workload.Bt_model.reference_checksum klass ~n_ranks in
  let run ~period ~seed =
    let scenario =
      match period with
      | None -> None
      | Some p -> Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:p)
    in
    let spec =
      {
        (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes) with
        Failmpi.Run.scenario;
        seed;
      }
    in
    let t0 = Unix.gettimeofday () in
    let r = Failmpi.Run.execute ~expected_checksum:expected spec in
    Printf.printf
      "period %s seed %Ld: %s%s faults=%d recoveries=%d waves=%d confused=%b ok=%s (wall %.1fs)\n%!"
      (match period with None -> "none" | Some p -> string_of_int p)
      seed
      (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
      (match r.Failmpi.Run.outcome with
      | Failmpi.Run.Completed t -> Printf.sprintf " t=%.0f" t
      | _ -> "")
      r.Failmpi.Run.injected_faults (Failmpi.Run.recoveries r) (Failmpi.Run.committed_waves r)
      (Failmpi.Run.confused r)
      (match r.Failmpi.Run.checksum_ok with
      | Some true -> "yes"
      | Some false -> "NO"
      | None -> "-")
      (Unix.gettimeofday () -. t0)
  in
  run ~period:None ~seed:1L;
  List.iter
    (fun p -> List.iter (fun s -> run ~period:(Some p) ~seed:s) [ 1L; 2L ])
    [ 65; 50; 40 ]
