let () =
  let n_ranks = 4 in
  let app = Workload.Stencil.app { Workload.Stencil.iterations = 60; compute_time = 0.5; msg_bytes = 5_000; jitter = 0.0 } ~n_ranks in
  let cfg = { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.protocol = Mpivcl.Config.Non_blocking; wave_interval = 10.0; term_straggler_prob = 0.0 } in
  let spec = { (Failmpi.Run.default_spec ~app ~cfg ~n_compute:8 ~state_bytes:1_000_000) with Failmpi.Run.timeout = 300.0; seed = 1L; trace_level = Simkern.Trace.Summary } in
  let r = Failmpi.Run.execute spec in
  match r.Failmpi.Run.outcome with
  | Failmpi.Run.Completed t -> Printf.printf "completed at %.1f s\n" t
  | o -> Printf.printf "outcome %s\n" (Failmpi.Run.outcome_name o)
