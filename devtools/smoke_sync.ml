(* Smoke: Fig. 7 (simultaneous faults), Fig. 8/9 (synchronized), and
   Fig. 10/11 (state-synchronized) scenarios at full scale. *)
let () =
  let n_ranks = 49 and n_machines = 53 in
  let klass = Workload.Bt_model.B in
  let app = Workload.Bt_model.app klass ~n_ranks in
  let cfg = Mpivcl.Config.default ~n_ranks in
  let state_bytes = Workload.Bt_model.state_bytes klass ~n_ranks in
  let expected = Workload.Bt_model.reference_checksum klass ~n_ranks in
  let run ~label ~scenario ~seed =
    let spec =
      {
        (Failmpi.Run.default_spec ~app ~cfg ~n_compute:n_machines ~state_bytes) with
        Failmpi.Run.scenario = Some scenario;
        seed;
      }
    in
    let t0 = Unix.gettimeofday () in
    let r = Failmpi.Run.execute ~expected_checksum:expected spec in
    Printf.printf "%-22s seed %2Ld: %-15s%s faults=%2d recov=%2d confused=%b ok=%s (wall %.1fs)\n%!"
      label seed
      (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
      (match r.Failmpi.Run.outcome with
      | Failmpi.Run.Completed t -> Printf.sprintf " t=%4.0f" t
      | _ -> "       ")
      r.Failmpi.Run.injected_faults (Failmpi.Run.recoveries r) (Failmpi.Run.confused r)
      (match r.Failmpi.Run.checksum_ok with
      | Some true -> "yes"
      | Some false -> "NO"
      | None -> "-")
      (Unix.gettimeofday () -. t0)
  in
  List.iter
    (fun count ->
      List.iter
        (fun seed ->
          run
            ~label:(Printf.sprintf "simultaneous x%d" count)
            ~scenario:
              (Fail_lang.Paper_scenarios.simultaneous ~n_machines ~period:50 ~count)
            ~seed)
        [ 1L; 2L; 3L; 4L; 5L; 6L ])
    [ 3; 4; 5 ];
  List.iter
    (fun seed ->
      run ~label:"synchronized (fig9)"
        ~scenario:(Fail_lang.Paper_scenarios.synchronized ~n_machines ~period:50)
        ~seed)
    [ 1L; 2L; 3L; 4L; 5L; 6L ];
  List.iter
    (fun seed ->
      run ~label:"state-sync (fig11)"
        ~scenario:(Fail_lang.Paper_scenarios.state_synchronized ~n_machines ~period:50)
        ~seed)
    [ 1L; 2L; 3L; 4L; 5L; 6L ]
