let () =
  let n_ranks = 25 in
  let n_machines = Experiments.Harness.machines_for n_ranks in
  let scenario = Some (Fail_lang.Paper_scenarios.frequency ~n_machines ~period:50) in
  let r =
    Experiments.Harness.run_bt ~klass:Workload.Bt_model.B ~n_ranks ~n_machines ~scenario
      ~seed:250L ()
  in
  Printf.printf "outcome=%s faults=%d waves=%d\n" (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
    r.Failmpi.Run.injected_faults (Failmpi.Run.committed_waves r);
  List.iter
    (fun e ->
      let open Simkern.Trace in
      if e.time < 420.0 && List.mem e.event
           [ "wave-start"; "wave-commit"; "wave-abort"; "failure-detected"; "recovery-complete" ]
      then Format.printf "%a@." pp_entry e)
    (Simkern.Trace.entries r.Failmpi.Run.trace)
