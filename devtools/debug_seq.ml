open Simkern
open Mpivcl
let () =
  let params = { Workload.Stencil.iterations = 30; compute_time = 0.5; msg_bytes = 10_000; jitter = 0.0 } in
  let cfg = { (Config.default ~n_ranks:4) with Config.wave_interval = 5.0; init_delay_min = 0.1; init_delay_max = 0.1 } in
  let eng = Engine.create ~seed:7L () in
  let app = Workload.Stencil.app params ~n_ranks:4 in
  let handle = Deploy.launch eng ~cfg ~app ~state_bytes:1_000_000 ~n_compute:6 () in
  let kill_rank rank =
    let cluster = Deploy.cluster handle in
    List.iter (fun (h : Simos.Cluster.host) ->
      List.iter (fun p ->
        let name = Proc.name p in
        if name = Printf.sprintf "vdaemon-%d" rank || name = Printf.sprintf "mpi-%d" rank then begin
          Printf.printf "%8.3f killing %s\n" (Engine.now eng) name; Proc.kill p end)
        (Simos.Cluster.tasks cluster ~host:h.Simos.Cluster.host_id))
      (Simos.Cluster.hosts cluster)
  in
  List.iter (fun (d, r) -> ignore (Engine.schedule eng ~delay:d (fun () -> kill_rank r)))
    [ (7.0, 0); (16.0, 3); (25.0, 1) ];
  ignore (Engine.run ~until:400.0 eng);
  Printf.printf "recoveries: %d outcome: %s\n" (Dispatcher.recoveries handle.Deploy.dispatcher)
    (match Dispatcher.peek_outcome handle.Deploy.dispatcher with
     | Some (Dispatcher.Completed t) -> Printf.sprintf "completed at %.1f" t
     | Some (Dispatcher.Aborted m) -> "aborted " ^ m | None -> "running");
  List.iter (fun e ->
      let open Trace in
      if List.mem e.event ["failure-detected";"recovery-start";"recovery-complete";"dispatcher-confused";"old-wave-stopped";"spawn-failed";"new-wave-failure";"app-completed";"closure-ignored"] then
        Format.printf "%a@." pp_entry e)
    (Trace.entries (Engine.trace eng))
