let () =
  print_string
    (Fail_lang.Paper_scenarios.ckpt_sniper ~n_machines:13 ~server:0 ~start:32 ~rank:3 ~gap:6)
