(* Quickstart: inject one fault into a fault-tolerant MPI application.

   Run with: dune exec examples/quickstart.exe

   A 4-rank stencil application runs on MPICH-Vcl (non-blocking
   Chandy-Lamport checkpointing, wave every 10 s) over an 8-machine
   simulated cluster. The FAIL scenario below kills one uniformly chosen
   MPI task 25 s into the run; the runtime detects the failure, rolls
   every rank back to the last committed checkpoint, and the application
   still produces exactly the checksum of a fault-free execution. *)

let scenario =
  {|
// Coordinator: one crash order, 25 s into the run.
Daemon COORD {
  node 1:
    always int ran = FAIL_RANDOM(0, 7);
    time t = 25;
    timer -> !crash(G1[ran]), goto 2;
  node 2:
    ?ok -> goto 3;                      // fault injected
    ?no -> !crash(G1[ran]), goto 2;     // empty machine: pick another
    always int ran = FAIL_RANDOM(0, 7);
  node 3:
}

// Per-machine controller (the paper's Figure 4).
Daemon NODE {
  node 1:
    onload -> continue, goto 2;
    ?crash -> !no(P1), goto 1;
  node 2:
    onexit -> goto 1;
    onerror -> goto 1;
    onload -> continue, goto 2;
    ?crash -> !ok(P1), halt, goto 1;
}

P1 : COORD on machine 8;
G1[8] : NODE on machines 0 .. 7;
|}

let () =
  let n_ranks = 4 in
  let params =
    { Workload.Stencil.iterations = 60; compute_time = 0.5; msg_bytes = 10_000; jitter = 0.01 }
  in
  let app = Workload.Stencil.app params ~n_ranks in
  let cfg = { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.wave_interval = 10.0 } in
  let spec =
    {
      (Failmpi.Run.default_spec ~app ~cfg ~n_compute:8 ~state_bytes:5_000_000) with
      Failmpi.Run.scenario = Some scenario;
      seed = 7L;
    }
  in
  let reference = Workload.Stencil.reference_checksum params ~n_ranks in
  let result = Failmpi.Run.execute ~expected_checksum:reference spec in
  Printf.printf "outcome:            %s\n" (Failmpi.Run.outcome_name result.Failmpi.Run.outcome);
  (match result.Failmpi.Run.outcome with
  | Failmpi.Run.Completed t ->
      Printf.printf "execution time:     %.1f s (fault-free would be ~%.0f s)\n" t
        (float_of_int params.Workload.Stencil.iterations *. params.Workload.Stencil.compute_time)
  | Failmpi.Run.Degraded _ | Failmpi.Run.Aborted _ | Failmpi.Run.Ckpt_lost
  | Failmpi.Run.Non_terminating | Failmpi.Run.Buggy | Failmpi.Run.Net_hung ->
      ());
  Printf.printf "faults injected:    %d\n" result.Failmpi.Run.injected_faults;
  Printf.printf "recovery waves:     %d\n" (Failmpi.Run.recoveries result);
  Printf.printf "checkpoints taken:  %d\n" (Failmpi.Run.committed_waves result);
  Printf.printf "checksum:           %s\n"
    (match result.Failmpi.Run.checksum_ok with
    | Some true -> "identical to the fault-free reference"
    | Some false -> "MISMATCH (protocol bug!)"
    | None -> "not checked");
  (* Show the fault-injection part of the execution trace. *)
  print_endline "\nkey trace events:";
  List.iter
    (fun e ->
      let open Simkern.Trace in
      if List.mem e.event [ "halt"; "failure-detected"; "recovery-start"; "recovery-complete" ]
      then Format.printf "  %a@." pp_entry e)
    (Simkern.Trace.entries result.Failmpi.Run.trace)
