(* Master-worker under fire: kill the master, kill a worker — the task
   farm still computes the exact fault-free checksum.

   Run with: dune exec examples/master_worker.exe

   The paper's introduction notes that MPI is often used for
   master-worker execution besides SPMD. A task farm stresses recovery
   differently from the BT stencil: rank 0 is a hot spot holding the
   accumulated results, so killing it is the worst case. We run the same
   scenario (one fault on the master at 20 s, one on a worker at 40 s)
   under both fault-tolerance protocols. *)

let scenario =
  {|
Daemon COORD {
  node 1:
    time t = 20;
    timer -> !crash(G1[0]), goto 2;   // the master's machine
  node 2:
    ?ok -> goto 3;
    ?no -> !crash(G1[0]), goto 2;
  node 3:
    time t = 20;
    timer -> !crash(G1[3]), goto 4;   // a worker's machine
  node 4:
    ?ok -> goto 5;
    ?no -> !crash(G1[3]), goto 4;
  node 5:
}
Daemon NODE {
  node 1:
    onload -> continue, goto 2;
    ?crash -> !no(P1), goto 1;
  node 2:
    onexit -> goto 1;
    onerror -> goto 1;
    onload -> continue, goto 2;
    ?crash -> !ok(P1), halt, goto 1;
}
P1 : COORD on machine 10;
G1[10] : NODE on machines 0 .. 9;
|}

let () =
  let n_ranks = 8 in
  let params =
    { Workload.Master_worker.tasks = 140; task_time = 2.0; task_bytes = 50_000; jitter = 0.3 }
  in
  let app = Workload.Master_worker.app params ~n_ranks in
  let reference = Workload.Master_worker.reference_checksum params ~n_ranks in
  Printf.printf "task farm: %d tasks over %d workers, %d rounds; 2 faults injected\n\n"
    params.Workload.Master_worker.tasks (n_ranks - 1)
    (Workload.Master_worker.rounds params ~n_ranks);
  List.iter
    (fun (label, protocol) ->
      let cfg =
        {
          (Mpivcl.Config.default ~n_ranks) with
          Mpivcl.Config.wave_interval = 10.0;
          protocol;
        }
      in
      let spec =
        {
          (Failmpi.Run.default_spec ~app ~cfg ~n_compute:10 ~state_bytes:2_000_000) with
          Failmpi.Run.scenario = Some scenario;
          seed = 5L;
        }
      in
      let r = Failmpi.Run.execute ~expected_checksum:reference spec in
      Printf.printf "%-28s %s%s, %d faults, %d restarts, checksum %s\n" label
        (Failmpi.Run.outcome_name r.Failmpi.Run.outcome)
        (match r.Failmpi.Run.outcome with
        | Failmpi.Run.Completed t -> Printf.sprintf " in %.0f s" t
        | _ -> "")
        r.Failmpi.Run.injected_faults (Failmpi.Run.recoveries r)
        (match r.Failmpi.Run.checksum_ok with
        | Some true -> "correct"
        | Some false -> "WRONG"
        | None -> "unchecked"))
    [
      ("Vcl (coordinated ckpt)", Mpivcl.Config.Non_blocking);
      ("V2 (sender logging)", Mpivcl.Config.Sender_logging);
    ];
  print_newline ();
  print_endline
    "Both protocols survive losing the master: Vcl rolls every rank back to\n\
     the last global wave; V2 restarts only the dead rank and replays the\n\
     workers' logged result messages into the fresh master."
