(* Writing custom FAIL scenarios, including the variable read/write
   extension (the paper's "planned feature").

   Run with: dune exec examples/custom_scenario.exe

   The scenario below exercises most of the language: daemon variables,
   per-node [always] declarations and timers, probability-free random
   choice, message passing between daemons, lifecycle triggers, process
   control, and — beyond the original tool — watching a variable of the
   application under test ([watch]/[@var]) to fire at a precise protocol
   state: here, a configurable delay after the second completed
   checkpoint wave of rank 0. *)

let scenario ~delay =
  Printf.sprintf
    {|
// Controller for machine 0 only: watch the daemon-exported "wave"
// variable and inject a single fault %d s after wave 2 completes.
Daemon WAVE_SNIPER {
  int shots = 1;
  node idle:
    onload -> continue, goto armed;
  node armed:
    watch(wave) && @wave >= 2 && shots > 0 -> goto countdown;
    onerror -> goto idle;
    onexit -> goto idle;
  node countdown:
    time fuse = %d;
    timer -> halt, shots = shots - 1, !done(P1), goto spent;
  node spent:
    onload -> continue, goto spent;
    onexit -> goto spent;
    onerror -> goto spent;
}

// A coordinator that just logs the kill via a message round-trip.
Daemon WATCHER {
  int kills = 0;
  node 1:
    ?done -> kills = kills + 1, goto 1;
}

P1 : WATCHER on machine 10;
G1[1] : WAVE_SNIPER on machines 0 .. 0;
|}
    delay delay

let () =
  let n_ranks = 9 in
  let params =
    { Workload.Stencil.iterations = 80; compute_time = 0.5; msg_bytes = 10_000; jitter = 0.0 }
  in
  let app = Workload.Stencil.app params ~n_ranks in
  let reference = Workload.Stencil.reference_checksum params ~n_ranks in
  let cfg = { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.wave_interval = 10.0 } in
  Printf.printf "%-28s %-12s %s\n" "injection point" "exec time" "vs no-fault";
  let base = ref 0.0 in
  List.iter
    (fun delay ->
      let spec =
        {
          (Failmpi.Run.default_spec ~app ~cfg ~n_compute:10 ~state_bytes:1_000_000) with
          Failmpi.Run.scenario = (if delay < 0 then None else Some (scenario ~delay));
          seed = 3L;
        }
      in
      let r = Failmpi.Run.execute ~expected_checksum:reference spec in
      match r.Failmpi.Run.outcome with
      | Failmpi.Run.Completed t ->
          if delay < 0 then base := t;
          Printf.printf "%-28s %8.1f s   %s\n"
            (if delay < 0 then "no fault" else Printf.sprintf "%d s after wave 2" delay)
            t
            (if delay < 0 then "-" else Printf.sprintf "+%.1f s" (t -. !base))
      | Failmpi.Run.Degraded _ | Failmpi.Run.Aborted _ | Failmpi.Run.Ckpt_lost
      | Failmpi.Run.Non_terminating | Failmpi.Run.Buggy | Failmpi.Run.Net_hung ->
          Printf.printf "%-28s %s\n"
            (Printf.sprintf "%d s after wave 2" delay)
            (Failmpi.Run.outcome_name r.Failmpi.Run.outcome))
    [ -1; 0; 3; 6; 9 ];
  print_endline
    "\nThe later the fault lands after the last checkpoint, the more work is\n\
     recomputed — the §5.2 hypothesis, measured directly thanks to the\n\
     variable-reading feature the paper planned."
