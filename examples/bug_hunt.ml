(* Bug hunting with FAIL-MPI: the paper's §5.3 story, re-enacted.

   Run with: dune exec examples/bug_hunt.exe

   1. Stress testing with simultaneous faults occasionally freezes the
      application — something is wrong, but it is rare and random.
   2. A synchronized scenario (second fault on the first recovery-wave
      onload) makes the freeze reproducible in a minority of runs.
   3. A state-synchronized scenario (second fault just before
      localMPI_setCommand, right after the daemon registered with the
      dispatcher) freezes EVERY run: the bug is located.
   4. The corrected dispatcher survives the same scenario: bug fixed. *)

let n_ranks = 25
let n_machines = 29

let run ?(buggy = true) ~scenario ~seed () =
  let cfg =
    { (Mpivcl.Config.default ~n_ranks) with Mpivcl.Config.dispatcher_buggy = buggy }
  in
  Experiments.Harness.run_bt ~cfg ~klass:Workload.Bt_model.A ~n_ranks ~n_machines
    ~scenario:(Some scenario) ~seed ()

let describe r =
  match r.Failmpi.Run.outcome with
  | Failmpi.Run.Completed t -> Printf.sprintf "completed in %.0f s" t
  | Failmpi.Run.Degraded { at; survivors } ->
      Printf.sprintf "degraded: completed in %.0f s on %d survivors" at survivors
  | Failmpi.Run.Aborted reason -> Printf.sprintf "aborted: %s" reason
  | Failmpi.Run.Ckpt_lost -> "ckpt-lost (no complete checkpoint image)"
  | Failmpi.Run.Non_terminating -> "non-terminating"
  | Failmpi.Run.Buggy -> "FROZE (dispatcher confused)"
  | Failmpi.Run.Net_hung -> "net-hung (network-explained wedge)"

let () =
  print_endline "step 1: stress test with 5 simultaneous faults every 50 s";
  let scenario = Fail_lang.Paper_scenarios.simultaneous ~n_machines ~period:50 ~count:5 in
  let frozen = ref None in
  let seeds = List.init 8 (fun i -> Int64.of_int (i + 1)) in
  List.iter
    (fun seed ->
      let r = run ~scenario ~seed () in
      Printf.printf "  seed %2Ld: %s\n%!" seed (describe r);
      if r.Failmpi.Run.outcome = Failmpi.Run.Buggy && !frozen = None then frozen := Some seed)
    seeds;
  (match !frozen with
  | Some seed -> Printf.printf "  -> seed %Ld froze: there is a bug, but where?\n\n" seed
  | None -> print_endline "  -> no freeze this time (it is a rare race); continuing\n");

  print_endline "step 2: synchronize the second fault with the recovery wave (Figure 8)";
  let scenario = Fail_lang.Paper_scenarios.synchronized ~n_machines ~period:40 in
  List.iter
    (fun seed ->
      let r = run ~scenario ~seed () in
      Printf.printf "  seed %2Ld: %s\n%!" seed (describe r))
    seeds;
  print_endline "  -> freezes concentrate in the recovery wave, but only some runs\n";

  print_endline
    "step 3: kill exactly after registration, before localMPI_setCommand (Figure 10)";
  let scenario = Fail_lang.Paper_scenarios.state_synchronized ~n_machines ~period:40 in
  let all_frozen = ref true in
  List.iter
    (fun seed ->
      let r = run ~scenario ~seed () in
      Printf.printf "  seed %2Ld: %s\n%!" seed (describe r);
      if r.Failmpi.Run.outcome <> Failmpi.Run.Buggy then all_frozen := false)
    seeds;
  Printf.printf "  -> %s\n\n"
    (if !all_frozen then
       "every run freezes: the dispatcher mishandles the failure of a\n\
        \     re-registered process while the previous wave is still stopping"
     else "not fully reproducible (unexpected)");

  print_endline "step 4: same scenario against the corrected dispatcher";
  List.iter
    (fun seed ->
      let r = run ~buggy:false ~scenario ~seed () in
      Printf.printf "  seed %2Ld: %s%s\n%!" seed (describe r)
        (match r.Failmpi.Run.checksum_ok with
        | Some true -> " (checksum correct)"
        | Some false -> " (CHECKSUM WRONG)"
        | None -> ""))
    [ 1L; 2L; 3L ];
  print_endline "  -> bug fixed; FAIL-MPI located it with two 10-line scenarios"
